package tracefile

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PhaseStats aggregates every occurrence of one phase name under one
// algorithm, across all runs and nesting depths.
type PhaseStats struct {
	Algo  string
	Phase string
	Count int
	// TotalNS sums the spans' wall-clock durations; SelfNS subtracts each
	// span's children first (time spent in the phase itself).
	TotalNS int64
	SelfNS  int64
	// AllocBytes sums the spans' heap-allocation deltas.
	AllocBytes int64
	// durs holds every span duration for exact quantiles.
	durs []int64
}

// quantileNS reports the exact q-quantile of the recorded durations by
// linear interpolation between order statistics. Zero for an empty set.
func quantileNS(durs []int64, q float64) int64 {
	n := len(durs)
	if n == 0 {
		return 0
	}
	if !(q >= 0) {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n || frac == 0 {
		return durs[lo]
	}
	return durs[lo] + int64(frac*float64(durs[lo+1]-durs[lo]))
}

// P50, P95 and P99 are the exact duration quantiles of the phase's spans.
func (s *PhaseStats) P50() int64 { return quantileNS(s.durs, 0.50) }
func (s *PhaseStats) P95() int64 { return quantileNS(s.durs, 0.95) }
func (s *PhaseStats) P99() int64 { return quantileNS(s.durs, 0.99) }

// RunStats aggregates the runs of one algorithm.
type RunStats struct {
	Algo       string
	Count      int
	Errors     int
	Incomplete int
	TotalNS    int64
	AllocBytes int64
	durs       []int64
}

// P50, P95 and P99 are the exact duration quantiles of the algorithm's runs.
func (s *RunStats) P50() int64 { return quantileNS(s.durs, 0.50) }
func (s *RunStats) P95() int64 { return quantileNS(s.durs, 0.95) }
func (s *RunStats) P99() int64 { return quantileNS(s.durs, 0.99) }

// PathStep is one hop of a critical path: the phase name with its total and
// self time at that level.
type PathStep struct {
	Name   string
	DurNS  int64
	SelfNS int64
}

// CriticalPath is the heaviest chain of nested phases of one run: starting
// at the run root, it descends into the longest child at every level. It is
// the answer to "where did this run's time actually go".
type CriticalPath struct {
	Algo  string
	Trace string
	RunID uint64
	DurNS int64
	Steps []PathStep
}

// PathOf computes the critical path of one run.
func PathOf(r *Run) CriticalPath {
	cp := CriticalPath{Algo: r.Algo, Trace: r.Trace, RunID: r.ID, DurNS: r.DurNS}
	node := r.Root
	for {
		var widest *Span
		for _, c := range node.Children {
			if widest == nil || c.DurNS > widest.DurNS {
				widest = c
			}
		}
		if widest == nil {
			break
		}
		cp.Steps = append(cp.Steps, PathStep{Name: widest.Name, DurNS: widest.DurNS, SelfNS: widest.SelfNS()})
		node = widest
	}
	return cp
}

// Summary is the aggregate view of a Trace: per-algorithm run statistics,
// per-(algorithm, phase) breakdowns, and the critical paths of the slowest
// runs.
type Summary struct {
	Runs   []*RunStats   // sorted by algorithm
	Phases []*PhaseStats // sorted by algorithm, then phase
	// Paths holds every run's critical path, slowest runs first.
	Paths []CriticalPath
	// TornTail and Events mirror the parse-level counters.
	TornTail int
	Events   int
	// Meta carries the producers' trace_meta fields keyed by trace id.
	Meta map[string]map[string]any
}

// Summarize aggregates a parsed trace.
func Summarize(t *Trace) *Summary {
	runStats := map[string]*RunStats{}
	phaseStats := map[[2]string]*PhaseStats{}
	var paths []CriticalPath

	for _, r := range t.Runs {
		rs := runStats[r.Algo]
		if rs == nil {
			rs = &RunStats{Algo: r.Algo}
			runStats[r.Algo] = rs
		}
		rs.Count++
		if r.Err != "" {
			rs.Errors++
		}
		if r.Incomplete {
			rs.Incomplete++
		} else {
			rs.TotalNS += r.DurNS
			rs.AllocBytes += r.Alloc
			rs.durs = append(rs.durs, r.DurNS)
		}
		var walk func(s *Span)
		walk = func(s *Span) {
			key := [2]string{r.Algo, s.Name}
			ps := phaseStats[key]
			if ps == nil {
				ps = &PhaseStats{Algo: r.Algo, Phase: s.Name}
				phaseStats[key] = ps
			}
			ps.Count++
			ps.TotalNS += s.DurNS
			ps.SelfNS += s.SelfNS()
			ps.AllocBytes += s.Alloc
			ps.durs = append(ps.durs, s.DurNS)
			for _, c := range s.Children {
				walk(c)
			}
		}
		for _, c := range r.Root.Children {
			walk(c)
		}
		if !r.Incomplete {
			paths = append(paths, PathOf(r))
		}
	}

	sum := &Summary{
		TornTail: t.TornTail,
		Events:   t.Events,
		Meta:     t.Meta,
	}
	for _, rs := range runStats {
		sort.Slice(rs.durs, func(i, j int) bool { return rs.durs[i] < rs.durs[j] })
		sum.Runs = append(sum.Runs, rs)
	}
	sort.Slice(sum.Runs, func(i, j int) bool { return sum.Runs[i].Algo < sum.Runs[j].Algo })
	for _, ps := range phaseStats {
		sort.Slice(ps.durs, func(i, j int) bool { return ps.durs[i] < ps.durs[j] })
		sum.Phases = append(sum.Phases, ps)
	}
	sort.Slice(sum.Phases, func(i, j int) bool {
		a, b := sum.Phases[i], sum.Phases[j]
		if a.Algo != b.Algo {
			return a.Algo < b.Algo
		}
		return a.Phase < b.Phase
	})
	sort.Slice(paths, func(i, j int) bool {
		if paths[i].DurNS != paths[j].DurNS {
			return paths[i].DurNS > paths[j].DurNS
		}
		if paths[i].Trace != paths[j].Trace {
			return paths[i].Trace < paths[j].Trace
		}
		return paths[i].RunID < paths[j].RunID
	})
	sum.Paths = paths
	return sum
}

// WriteFolded renders the trace as folded stacks for flamegraph tools
// (flamegraph.pl, speedscope, inferno): one "algo;phase;...;leaf value"
// line per distinct stack, value in microseconds of self time, identical
// stacks merged, sorted. Run self time (run duration minus its top-level
// phases) appears as the bare "algo" frame.
func WriteFolded(w io.Writer, t *Trace) error {
	folded := map[string]int64{}
	var walk func(prefix string, s *Span)
	walk = func(prefix string, s *Span) {
		stack := prefix + ";" + sanitizeFrame(s.Name)
		folded[stack] += s.SelfNS()
		for _, c := range s.Children {
			walk(stack, c)
		}
	}
	for _, r := range t.Runs {
		root := sanitizeFrame(r.Algo)
		folded[root] += r.Root.SelfNS()
		for _, c := range r.Root.Children {
			walk(root, c)
		}
	}
	stacks := make([]string, 0, len(folded))
	for stack := range folded {
		stacks = append(stacks, stack)
	}
	sort.Strings(stacks)
	for _, stack := range stacks {
		us := folded[stack] / 1000
		if us <= 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", stack, us); err != nil {
			return err
		}
	}
	return nil
}

// sanitizeFrame keeps a frame name inside the folded-stack grammar, where
// ';' separates frames and ' ' separates the stack from its value.
func sanitizeFrame(name string) string {
	name = strings.ReplaceAll(name, ";", ",")
	return strings.ReplaceAll(name, " ", "_")
}

// DiffOptions tune regression detection.
type DiffOptions struct {
	// Threshold is the relative slowdown that counts as a regression
	// (0.2 = 20% slower). Zero defaults to 0.2.
	Threshold float64
	// MinNS ignores phases whose p50 stayed under this duration in both
	// traces — tiny phases are all scheduler noise. Zero defaults to 1ms.
	MinNS int64
}

// PhaseDelta compares one (algorithm, phase) between two traces. The run
// row uses the reserved phase name "(run)".
type PhaseDelta struct {
	Algo, Phase        string
	OldP50NS, NewP50NS int64
	OldCount, NewCount int
	// Ratio is NewP50/OldP50 (0 when the phase is missing on either side).
	Ratio float64
	// Regressed marks a slowdown beyond the threshold.
	Regressed bool
}

// RunPhaseName is the pseudo-phase under which Diff reports whole-run
// durations.
const RunPhaseName = "(run)"

// Diff compares two summaries phase by phase on p50 duration, flagging
// slowdowns beyond opt.Threshold. Phases present on only one side are
// reported with a zero ratio but never flagged — appearing or disappearing
// phases are a code change, not a measured regression. The returned deltas
// are sorted worst-ratio first.
func Diff(before, after *Summary, opt DiffOptions) []PhaseDelta {
	if opt.Threshold == 0 {
		opt.Threshold = 0.2
	}
	if opt.MinNS == 0 {
		opt.MinNS = 1_000_000
	}
	type side struct {
		p50   int64
		count int
	}
	rows := map[[2]string][2]side{}
	collect := func(s *Summary, idx int) {
		for _, rs := range s.Runs {
			key := [2]string{rs.Algo, RunPhaseName}
			r := rows[key]
			r[idx] = side{p50: rs.P50(), count: rs.Count}
			rows[key] = r
		}
		for _, ps := range s.Phases {
			key := [2]string{ps.Algo, ps.Phase}
			r := rows[key]
			r[idx] = side{p50: ps.P50(), count: ps.Count}
			rows[key] = r
		}
	}
	collect(before, 0)
	collect(after, 1)

	var out []PhaseDelta
	for key, r := range rows {
		d := PhaseDelta{
			Algo: key[0], Phase: key[1],
			OldP50NS: r[0].p50, NewP50NS: r[1].p50,
			OldCount: r[0].count, NewCount: r[1].count,
		}
		if r[0].count > 0 && r[1].count > 0 && r[0].p50 > 0 {
			d.Ratio = float64(r[1].p50) / float64(r[0].p50)
			big := r[0].p50 >= opt.MinNS || r[1].p50 >= opt.MinNS
			d.Regressed = big && d.Ratio > 1+opt.Threshold
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ratio != out[j].Ratio {
			return out[i].Ratio > out[j].Ratio
		}
		if out[i].Algo != out[j].Algo {
			return out[i].Algo < out[j].Algo
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}
