package tracefile

import (
	"strings"
	"testing"

	"graphalign/internal/obsv"
)

// traceWithRuns builds a parsed trace of several NSD runs with given
// similarity durations (ms) and one GRASP run.
func traceWithRuns(t *testing.T, simMS ...int64) *Trace {
	t.Helper()
	var events []obsv.Event
	var id uint64 = 1
	for _, ms := range simMS {
		events = append(events, syntheticRun("t", id, "NSD", ms, ms/2, 10)...)
		id += 10
	}
	events = append(events, syntheticRun("t", id, "GRASP", 100, 10, 20)...)
	tr, err := Read(strings.NewReader(jsonl(t, events...)), "f")
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSummarizePhaseStats(t *testing.T) {
	tr := traceWithRuns(t, 10, 20, 30, 40)
	sum := Summarize(tr)

	var nsdSim *PhaseStats
	for _, ps := range sum.Phases {
		if ps.Algo == "NSD" && ps.Phase == "similarity" {
			nsdSim = ps
		}
	}
	if nsdSim == nil {
		t.Fatal("no NSD/similarity row")
	}
	if nsdSim.Count != 4 {
		t.Errorf("count = %d, want 4", nsdSim.Count)
	}
	if nsdSim.TotalNS != 100_000_000 {
		t.Errorf("total = %d, want 100ms", nsdSim.TotalNS)
	}
	// Self = total minus nested lanczos (half of each sim): 100-50 = 50ms.
	if nsdSim.SelfNS != 50_000_000 {
		t.Errorf("self = %d, want 50ms", nsdSim.SelfNS)
	}
	// Exact quantiles over {10,20,30,40}ms: p50 interpolates to 25ms.
	if got := nsdSim.P50(); got != 25_000_000 {
		t.Errorf("p50 = %d, want 25ms", got)
	}
	if got := nsdSim.P99(); got <= 39_000_000 || got > 40_000_000 {
		t.Errorf("p99 = %d, want just under 40ms", got)
	}
	// Alloc deltas sum across spans (500 bytes per synthetic sim phase).
	if nsdSim.AllocBytes != 4*500 {
		t.Errorf("alloc = %d, want 2000", nsdSim.AllocBytes)
	}

	var nsdRuns *RunStats
	for _, rs := range sum.Runs {
		if rs.Algo == "NSD" {
			nsdRuns = rs
		}
	}
	if nsdRuns == nil || nsdRuns.Count != 4 || nsdRuns.Errors != 0 {
		t.Fatalf("NSD run stats = %+v", nsdRuns)
	}
}

func TestCriticalPath(t *testing.T) {
	tr := traceWithRuns(t, 10)
	sum := Summarize(tr)
	if len(sum.Paths) != 2 {
		t.Fatalf("paths = %d, want one per run", len(sum.Paths))
	}
	// Slowest run first: GRASP at 121ms.
	cp := sum.Paths[0]
	if cp.Algo != "GRASP" {
		t.Fatalf("slowest path algo = %s, want GRASP", cp.Algo)
	}
	// GRASP: similarity (100ms) dominates assign (20ms); inside similarity,
	// lanczos (10ms) is the only child.
	if len(cp.Steps) != 2 || cp.Steps[0].Name != "similarity" || cp.Steps[1].Name != "lanczos" {
		t.Fatalf("critical path = %+v, want similarity -> lanczos", cp.Steps)
	}
	if cp.Steps[0].DurNS != 100_000_000 || cp.Steps[0].SelfNS != 90_000_000 {
		t.Errorf("step 0 = %+v, want 100ms total 90ms self", cp.Steps[0])
	}
}

func TestWriteFolded(t *testing.T) {
	tr := traceWithRuns(t, 10)
	var b strings.Builder
	if err := WriteFolded(&b, tr); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// GRASP similarity self = 100-10 = 90ms = 90000us.
	wantLines := []string{
		"GRASP;similarity 90000",
		"GRASP;similarity;lanczos 10000",
		"GRASP;assign 20000",
	}
	for _, want := range wantLines {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("folded output missing %q:\n%s", want, out)
		}
	}
	// Folded format: every line is "stack value" with ;-separated frames.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		parts := strings.Split(line, " ")
		if len(parts) != 2 {
			t.Errorf("malformed folded line %q", line)
		}
	}
	// Deterministic: a second render must be identical.
	var b2 strings.Builder
	if err := WriteFolded(&b2, tr); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("folded output not deterministic across renders")
	}
}

func TestDiffFlagsInjectedRegression(t *testing.T) {
	// Baseline: NSD similarity at 100ms. Regressed: 130ms (+30%).
	before := Summarize(traceWithRuns(t, 100, 100, 100))
	after := Summarize(traceWithRuns(t, 130, 130, 130))

	deltas := Diff(before, after, DiffOptions{Threshold: 0.2})
	var simDelta *PhaseDelta
	for i := range deltas {
		if deltas[i].Algo == "NSD" && deltas[i].Phase == "similarity" {
			simDelta = &deltas[i]
		}
	}
	if simDelta == nil {
		t.Fatal("diff lost the NSD/similarity row")
	}
	if !simDelta.Regressed {
		t.Errorf("30%% slowdown above 20%% threshold not flagged: %+v", simDelta)
	}
	if simDelta.Ratio < 1.29 || simDelta.Ratio > 1.31 {
		t.Errorf("ratio = %g, want ~1.3", simDelta.Ratio)
	}

	// The whole-run row regressed too.
	var runDelta *PhaseDelta
	for i := range deltas {
		if deltas[i].Algo == "NSD" && deltas[i].Phase == RunPhaseName {
			runDelta = &deltas[i]
		}
	}
	if runDelta == nil || !runDelta.Regressed {
		t.Errorf("run-level regression not flagged: %+v", runDelta)
	}

	// Identical traces: nothing may be flagged.
	for _, d := range Diff(before, before, DiffOptions{Threshold: 0.2}) {
		if d.Regressed {
			t.Errorf("self-diff flagged %s/%s", d.Algo, d.Phase)
		}
	}

	// A slowdown below the threshold must pass.
	slight := Summarize(traceWithRuns(t, 110, 110, 110))
	for _, d := range Diff(before, slight, DiffOptions{Threshold: 0.2}) {
		if d.Regressed {
			t.Errorf("10%% slowdown flagged at 20%% threshold: %s/%s ratio %g", d.Algo, d.Phase, d.Ratio)
		}
	}
}

func TestDiffIgnoresTinyAndMissingPhases(t *testing.T) {
	// 0.1ms phases double but stay under the 1ms floor: not a regression.
	before := Summarize(traceWithRuns(t, 1))
	tiny := traceWithRuns(t, 1)
	deltas := Diff(before, Summarize(tiny), DiffOptions{Threshold: 0.2, MinNS: 50_000_000})
	for _, d := range deltas {
		if d.Regressed {
			t.Errorf("phase under MinNS flagged: %+v", d)
		}
	}

	// A phase present on only one side is reported but never flagged.
	after := Summarize(traceWithRuns(t, 1, 1)) // GRASP row exists both sides; fabricate missing by filtering
	onlyOld := &Summary{Phases: []*PhaseStats{{Algo: "GONE", Phase: "warmup", Count: 3, durs: []int64{5_000_000}}}}
	for _, d := range Diff(onlyOld, after, DiffOptions{}) {
		if d.Algo == "GONE" && d.Regressed {
			t.Errorf("one-sided phase flagged: %+v", d)
		}
	}
}

func TestQuantileNS(t *testing.T) {
	durs := []int64{10, 20, 30, 40}
	cases := []struct {
		q    float64
		want int64
	}{
		{0, 10}, {1, 40}, {0.5, 25}, {-1, 10}, {2, 40},
	}
	for _, c := range cases {
		if got := quantileNS(durs, c.q); got != c.want {
			t.Errorf("quantileNS(%v) = %d, want %d", c.q, got, c.want)
		}
	}
	if got := quantileNS(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}
}
