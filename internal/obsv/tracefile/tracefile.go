// Package tracefile parses and analyzes the JSONL trace files written by
// the obsv tracer (alignbench -trace-out, alignrun -trace-out): it
// stream-parses events, rebuilds the span tree of every algorithm run, and
// aggregates per-phase statistics, critical paths, folded flamegraph
// stacks and A/B regression diffs on top of them. It is the read side of
// the trace-file schema contract documented in DESIGN.md §13.
//
// Robustness rules:
//
//   - Torn tail: a process killed mid-write leaves at most one partial
//     final line; that line is ignored (Trace.TornTail reports it). A
//     malformed line *followed by more data* is file corruption and a hard
//     error — silently skipping interior lines would bias every aggregate.
//   - Interleaved runs: events carry the span id of their enclosing run
//     (Event.Run), so the phases of concurrent runs separate cleanly. For
//     files predating the run-id field, the parser falls back to resolving
//     the parent chain.
//   - Concatenated files: events carry a per-invocation trace id
//     (Event.Trace); span ids are only unique within one tracer, so all
//     span bookkeeping is keyed by (trace, id). Events without a trace id
//     inherit the fallback label passed to Read (the file name, for file
//     inputs).
package tracefile

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"graphalign/internal/obsv"
)

// Span is one completed timed region rebuilt from a phase or run_end event.
type Span struct {
	ID     uint64
	Parent uint64
	Run    uint64
	Trace  string
	// Name is the phase name (or the algorithm name for the run root).
	Name string
	// EndNS is the event timestamp (spans are emitted when they end).
	EndNS int64
	// DurNS is the span's wall-clock duration in nanoseconds.
	DurNS int64
	// Alloc is the process-wide heap-allocation delta across the span.
	Alloc    int64
	Fields   map[string]any
	Children []*Span
}

// SelfNS is the span's duration minus its children's (clamped at zero:
// with concurrent children the sum can exceed the parent's wall clock).
func (s *Span) SelfNS() int64 {
	var kids int64
	for _, c := range s.Children {
		kids += c.DurNS
	}
	if self := s.DurNS - kids; self > 0 {
		return self
	}
	return 0
}

// Run is one algorithm run: a run_start/run_end pair plus the tree of phase
// spans recorded under it.
type Run struct {
	Trace string
	ID    uint64
	// Algo is the algorithm name from run_start.
	Algo string
	// StartNS is the run_start timestamp.
	StartNS int64
	// DurNS and Alloc come from run_end; both stay zero for a run whose
	// end event never made it to the file (see Incomplete).
	DurNS int64
	Alloc int64
	// Err is the run error annotated on run_end ("" for a clean run).
	Err string
	// Fields carries the run_start annotations (assign method, sizes).
	Fields map[string]any
	// Root is the run span; its Children are the top-level phases.
	Root *Span
	// Incomplete marks a run with no run_end event (crash, torn tail).
	Incomplete bool
}

// Trace is the parsed content of one or more trace JSONL streams.
type Trace struct {
	Runs []*Run
	// Meta maps a trace id to the fields of its trace_meta event (seed,
	// scale, go version — whatever the producer recorded).
	Meta map[string]map[string]any
	// Events counts all parsed events; ByType breaks them down.
	Events int
	ByType map[string]int
	// TornTail reports how many partial final lines were dropped (at most
	// one per Read call).
	TornTail int
}

// spanKey identifies a span across concatenated traces.
type spanKey struct {
	trace string
	id    uint64
}

// Parser accumulates events across multiple Read calls into one Trace.
type Parser struct {
	trace *Trace
	spans map[spanKey]*Span
	runs  map[spanKey]*Run
}

// NewParser returns a parser whose Read calls accumulate into a single
// Trace — the way to analyze several files as one dataset.
func NewParser() *Parser {
	return &Parser{
		trace: &Trace{Meta: map[string]map[string]any{}, ByType: map[string]int{}},
		spans: map[spanKey]*Span{},
		runs:  map[spanKey]*Run{},
	}
}

// Trace finalizes the parse: every phase span is attached to its parent
// (or its run root), children are ordered by end time, and the accumulated
// Trace is returned. Call after the last Read.
func (p *Parser) Trace() *Trace {
	for key, s := range p.spans {
		if s.Run != 0 {
			if r, ok := p.runs[spanKey{key.trace, s.Run}]; ok {
				p.attach(key.trace, r, s)
				continue
			}
		}
		// Pre-run-id trace: resolve the parent chain to a run.
		if r := p.runByParentChain(key.trace, s); r != nil {
			p.attach(key.trace, r, s)
		}
	}
	// Attachment order above follows map iteration; impose a deterministic
	// child order (end time, then span id) so every downstream report is
	// stable across parses of the same file.
	for _, r := range p.trace.Runs {
		sortTree(r.Root)
	}
	return p.trace
}

func sortTree(s *Span) {
	sort.Slice(s.Children, func(i, j int) bool {
		a, b := s.Children[i], s.Children[j]
		if a.EndNS != b.EndNS {
			return a.EndNS < b.EndNS
		}
		return a.ID < b.ID
	})
	for _, c := range s.Children {
		sortTree(c)
	}
}

// attach links s under its direct parent span when that span exists,
// otherwise directly under the run root.
func (p *Parser) attach(trace string, r *Run, s *Span) {
	if s.Parent != 0 && s.Parent != r.ID {
		if parent, ok := p.spans[spanKey{trace, s.Parent}]; ok {
			parent.Children = append(parent.Children, s)
			return
		}
	}
	r.Root.Children = append(r.Root.Children, s)
}

// runByParentChain ascends Parent links until it finds a run span.
func (p *Parser) runByParentChain(trace string, s *Span) *Run {
	for hops := 0; hops < 1000; hops++ { // cycle guard on corrupt ids
		if r, ok := p.runs[spanKey{trace, s.Parent}]; ok {
			return r
		}
		next, ok := p.spans[spanKey{trace, s.Parent}]
		if !ok {
			return nil
		}
		s = next
	}
	return nil
}

// Read stream-parses one JSONL trace from r. fallbackTrace labels events
// that carry no trace id of their own (use the file name). A torn final
// line is tolerated; malformed interior lines are an error.
func (p *Parser) Read(r io.Reader, fallbackTrace string) error {
	br := bufio.NewReaderSize(r, 1<<16)
	line := 0
	var pendingErr error
	var pendingLine int
	for {
		raw, err := br.ReadBytes('\n')
		atEOF := err == io.EOF
		if err != nil && !atEOF {
			return err
		}
		text := strings.TrimSpace(string(raw))
		if text != "" {
			line++
			// A malformed line earlier was only acceptable as a torn tail;
			// seeing more data after it means real corruption.
			if pendingErr != nil {
				return fmt.Errorf("trace line %d: %w (followed by more events, so not a torn tail)", pendingLine, pendingErr)
			}
			var e obsv.Event
			if uerr := json.Unmarshal([]byte(text), &e); uerr != nil {
				pendingErr, pendingLine = uerr, line
			} else {
				p.event(e, fallbackTrace)
			}
		}
		if atEOF {
			break
		}
	}
	if pendingErr != nil {
		p.trace.TornTail++
	}
	return nil
}

// ReadFile parses one trace file, labeling trace-id-less events with the
// file path.
func (p *Parser) ReadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := p.Read(f, path); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// event folds one parsed event into the accumulating state.
func (p *Parser) event(e obsv.Event, fallbackTrace string) {
	t := p.trace
	t.Events++
	t.ByType[e.Type]++
	trace := e.Trace
	if trace == "" {
		trace = fallbackTrace
	}
	switch e.Type {
	case "run_start":
		run := &Run{
			Trace:      trace,
			ID:         e.Span,
			Algo:       e.Name,
			StartNS:    e.T,
			Fields:     e.Fields,
			Incomplete: true,
			Root: &Span{
				ID: e.Span, Run: e.Span, Trace: trace, Name: e.Name,
			},
		}
		p.runs[spanKey{trace, e.Span}] = run
		t.Runs = append(t.Runs, run)
	case "run_end":
		run, ok := p.runs[spanKey{trace, e.Span}]
		if !ok {
			// run_end without its start (file started mid-trace): synthesize
			// the run so its phases still aggregate.
			run = &Run{
				Trace: trace, ID: e.Span, Algo: e.Name, Fields: e.Fields,
				Root: &Span{ID: e.Span, Run: e.Span, Trace: trace, Name: e.Name},
			}
			p.runs[spanKey{trace, e.Span}] = run
			t.Runs = append(t.Runs, run)
		}
		run.Incomplete = false
		run.DurNS = e.DurNS
		run.Alloc = e.Alloc
		run.Root.DurNS = e.DurNS
		run.Root.Alloc = e.Alloc
		run.Root.EndNS = e.T
		run.Root.Fields = e.Fields
		if errv, ok := e.Fields["err"].(string); ok {
			run.Err = errv
		}
	case "phase":
		p.spans[spanKey{trace, e.Span}] = &Span{
			ID: e.Span, Parent: e.Parent, Run: e.Run, Trace: trace,
			Name: e.Name, EndNS: e.T, DurNS: e.DurNS, Alloc: e.Alloc,
			Fields: e.Fields,
		}
	case "trace_meta":
		if e.Fields != nil {
			t.Meta[trace] = e.Fields
		}
	}
}

// Read parses a single JSONL stream into a Trace.
func Read(r io.Reader, fallbackTrace string) (*Trace, error) {
	p := NewParser()
	if err := p.Read(r, fallbackTrace); err != nil {
		return nil, err
	}
	return p.Trace(), nil
}

// ReadFiles parses one or more trace files into a single Trace.
func ReadFiles(paths ...string) (*Trace, error) {
	p := NewParser()
	for _, path := range paths {
		if err := p.ReadFile(path); err != nil {
			return nil, err
		}
	}
	return p.Trace(), nil
}
