package tracefile

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"graphalign/internal/obsv"
)

// jsonl renders events as the tracer would.
func jsonl(t *testing.T, events ...obsv.Event) string {
	t.Helper()
	var b strings.Builder
	for _, e := range events {
		raw, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(raw)
		b.WriteByte('\n')
	}
	return b.String()
}

// syntheticRun builds the events of one run with two top-level phases and a
// nested phase, with exact durations (ms units for readability).
func syntheticRun(trace string, runID uint64, algo string, simMS, innerMS, assignMS int64) []obsv.Event {
	ms := int64(1_000_000)
	return []obsv.Event{
		{T: 1, Type: "run_start", Name: algo, Span: runID, Run: runID, Trace: trace},
		{T: 2, Type: "phase", Name: "lanczos", Span: runID + 1, Parent: runID + 2, Run: runID, Trace: trace, DurNS: innerMS * ms, Alloc: 100},
		{T: 3, Type: "phase", Name: "similarity", Span: runID + 2, Parent: runID, Run: runID, Trace: trace, DurNS: simMS * ms, Alloc: 500},
		{T: 4, Type: "phase", Name: "assign", Span: runID + 3, Parent: runID, Run: runID, Trace: trace, DurNS: assignMS * ms, Alloc: 200},
		{T: 5, Type: "run_end", Name: algo, Span: runID, Run: runID, Trace: trace, DurNS: (simMS + assignMS + 1) * ms, Alloc: 900},
	}
}

func TestParseRebuildsSpanTrees(t *testing.T) {
	events := syntheticRun("t1", 10, "GRASP", 100, 60, 40)
	tr, err := Read(strings.NewReader(jsonl(t, events...)), "fallback")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(tr.Runs))
	}
	r := tr.Runs[0]
	if r.Algo != "GRASP" || r.Incomplete || r.DurNS != 141_000_000 {
		t.Fatalf("run = %+v", r)
	}
	if len(r.Root.Children) != 2 {
		t.Fatalf("top-level phases = %d, want 2 (similarity, assign)", len(r.Root.Children))
	}
	var sim *Span
	for _, c := range r.Root.Children {
		if c.Name == "similarity" {
			sim = c
		}
	}
	if sim == nil {
		t.Fatal("similarity phase missing from tree")
	}
	if len(sim.Children) != 1 || sim.Children[0].Name != "lanczos" {
		t.Fatalf("similarity children = %+v, want [lanczos]", sim.Children)
	}
	// Self time: 100ms similarity minus 60ms nested lanczos.
	if got := sim.SelfNS(); got != 40_000_000 {
		t.Errorf("similarity self = %d, want 40ms", got)
	}
}

func TestParseSeparatesInterleavedRuns(t *testing.T) {
	// Two runs whose events interleave in file order, as concurrent workers
	// produce them. Phase attribution must follow run ids, not adjacency.
	ms := int64(1_000_000)
	events := []obsv.Event{
		{T: 1, Type: "run_start", Name: "NSD", Span: 1, Run: 1},
		{T: 2, Type: "run_start", Name: "GRASP", Span: 2, Run: 2},
		{T: 3, Type: "phase", Name: "similarity", Span: 3, Parent: 2, Run: 2, DurNS: 30 * ms},
		{T: 4, Type: "phase", Name: "similarity", Span: 4, Parent: 1, Run: 1, DurNS: 10 * ms},
		{T: 5, Type: "run_end", Name: "GRASP", Span: 2, Run: 2, DurNS: 35 * ms},
		{T: 6, Type: "run_end", Name: "NSD", Span: 1, Run: 1, DurNS: 12 * ms},
	}
	tr, err := Read(strings.NewReader(jsonl(t, events...)), "f")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(tr.Runs))
	}
	for _, r := range tr.Runs {
		if len(r.Root.Children) != 1 {
			t.Fatalf("%s phases = %d, want 1", r.Algo, len(r.Root.Children))
		}
		sim := r.Root.Children[0]
		want := map[string]int64{"NSD": 10 * ms, "GRASP": 30 * ms}[r.Algo]
		if sim.DurNS != want {
			t.Errorf("%s similarity = %dms, want %dms (cross-run attribution)", r.Algo, sim.DurNS/ms, want/ms)
		}
	}
}

func TestParseLegacyTraceWithoutRunIDs(t *testing.T) {
	// Pre-run-id files: Run fields absent; attribution must fall back to
	// the parent chain.
	ms := int64(1_000_000)
	events := []obsv.Event{
		{T: 1, Type: "run_start", Name: "CONE", Span: 7},
		{T: 2, Type: "phase", Name: "inner", Span: 9, Parent: 8, DurNS: 1 * ms},
		{T: 3, Type: "phase", Name: "similarity", Span: 8, Parent: 7, DurNS: 2 * ms},
		{T: 4, Type: "run_end", Name: "CONE", Span: 7, DurNS: 3 * ms},
	}
	tr, err := Read(strings.NewReader(jsonl(t, events...)), "f")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(tr.Runs))
	}
	r := tr.Runs[0]
	if len(r.Root.Children) != 1 || r.Root.Children[0].Name != "similarity" {
		t.Fatalf("top-level = %+v, want [similarity]", r.Root.Children)
	}
	if kids := r.Root.Children[0].Children; len(kids) != 1 || kids[0].Name != "inner" {
		t.Fatalf("nested = %+v, want [inner]", kids)
	}
}

func TestTornTailTolerated(t *testing.T) {
	full := jsonl(t, syntheticRun("t1", 10, "NSD", 5, 2, 3)...)
	// Chop the final line mid-JSON, as a SIGKILL mid-write would.
	torn := full[:len(full)-25]
	if strings.HasSuffix(torn, "\n") {
		t.Fatal("test setup: tail not actually torn")
	}
	tr, err := Read(strings.NewReader(torn), "f")
	if err != nil {
		t.Fatalf("torn tail must parse: %v", err)
	}
	if tr.TornTail != 1 {
		t.Errorf("TornTail = %d, want 1", tr.TornTail)
	}
	if len(tr.Runs) != 1 || !tr.Runs[0].Incomplete {
		t.Errorf("run with torn run_end must be retained as incomplete; got %+v", tr.Runs)
	}
}

func TestMalformedInteriorLineIsError(t *testing.T) {
	full := jsonl(t, syntheticRun("t1", 10, "NSD", 5, 2, 3)...)
	lines := strings.SplitAfter(full, "\n")
	corrupt := lines[0] + "{\"t\": 99, \"type\": tru\n" + strings.Join(lines[1:], "")
	if _, err := Read(strings.NewReader(corrupt), "f"); err == nil {
		t.Fatal("malformed interior line must be a parse error, not silently dropped")
	}
}

func TestConcatenatedTracesKeyedByTraceID(t *testing.T) {
	// Two invocations with colliding span ids, distinguished by trace id.
	a := syntheticRun("inv-a", 10, "NSD", 5, 2, 3)
	b := syntheticRun("inv-b", 10, "NSD", 50, 20, 30)
	var buf bytes.Buffer
	buf.WriteString(jsonl(t, a...))
	buf.WriteString(jsonl(t, b...))
	tr, err := Read(&buf, "f")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Runs) != 2 {
		t.Fatalf("runs = %d, want 2 despite colliding span ids", len(tr.Runs))
	}
	durs := map[string]int64{}
	for _, r := range tr.Runs {
		durs[r.Trace] = r.DurNS
	}
	if durs["inv-a"] != 9_000_000 || durs["inv-b"] != 81_000_000 {
		t.Errorf("per-trace run durations = %v", durs)
	}
}

func TestTraceMetaCollected(t *testing.T) {
	events := []obsv.Event{
		{T: 1, Type: "trace_meta", Trace: "inv-a", Fields: map[string]any{"seed": 42.0, "go": "go1.24"}},
	}
	tr, err := Read(strings.NewReader(jsonl(t, events...)), "f")
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Meta["inv-a"]["seed"]; got != 42.0 {
		t.Errorf("meta seed = %v, want 42", got)
	}
}

// TestRoundTripThroughRealTracer drives the actual obsv tracer and parses
// its output — the contract test between producer and consumer.
func TestRoundTripThroughRealTracer(t *testing.T) {
	var buf bytes.Buffer
	ws := obsv.NewWriterSink(&buf)
	tr := obsv.New(ws).SetTraceID("round-trip")
	run := tr.StartRun("GRASP", map[string]any{"assign": "JV", "n_src": 10})
	sim := run.Phase("similarity")
	inner := sim.Phase("eigsolve")
	inner.End()
	sim.End()
	asg := run.Phase("assign")
	asg.End()
	run.End()
	if err := ws.Err(); err != nil {
		t.Fatal(err)
	}

	parsed, err := Read(&buf, "f")
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(parsed.Runs))
	}
	r := parsed.Runs[0]
	if r.Trace != "round-trip" || r.Algo != "GRASP" || r.Incomplete {
		t.Fatalf("run = %+v", r)
	}
	names := map[string]bool{}
	for _, c := range r.Root.Children {
		names[c.Name] = true
		for _, cc := range c.Children {
			names[c.Name+"/"+cc.Name] = true
		}
	}
	for _, want := range []string{"similarity", "assign", "similarity/eigsolve"} {
		if !names[want] {
			t.Errorf("span tree missing %q; have %v", want, names)
		}
	}
	if r.Fields["assign"] != "JV" {
		t.Errorf("run fields = %v, want assign=JV", r.Fields)
	}
}
