package obsv

import (
	"fmt"
	"sync"
	"testing"
)

// TestSpanTracePinnedAtStart is the regression test for the shared-tracer
// cross-stamping bug: SetTraceID mutates tracer-wide state, so before spans
// pinned their trace id at StartRun, every event of an in-flight run was
// stamped with whichever id was set *last* — under two concurrent jobs,
// spans carried the wrong job's trace id. This fails on the pre-fix code
// (phase and run_end events pick up "second").
func TestSpanTracePinnedAtStart(t *testing.T) {
	sink := &collectSink{}
	tr := New(sink).SetTraceID("first")
	run := tr.StartRun("A", nil)
	tr.SetTraceID("second") // another job re-stamping the shared tracer
	ph := run.Phase("inner")
	ph.Event("tick", nil)
	ph.End()
	run.End()

	sink.mu.Lock()
	defer sink.mu.Unlock()
	for _, e := range sink.events {
		if e.Trace != "first" {
			t.Errorf("%s event stamped trace %q, want %q (pinned at StartRun)", e.Type, e.Trace, "first")
		}
	}
}

// TestChildTracersNoCrossStamping runs two interleaved jobs, each on its own
// ChildTrace of a shared root, and asserts every event of a run carries the
// trace id of the job that started it. Run under -race this also proves the
// child fan-out path is free of data races.
func TestChildTracersNoCrossStamping(t *testing.T) {
	root := &collectSink{}
	tr := New(root).SetTraceID("root")

	const jobs, runsPerJob = 4, 50
	var wg sync.WaitGroup
	perJob := make([]*collectSink, jobs)
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		perJob[j] = &collectSink{}
		go func(j int) {
			defer wg.Done()
			id := fmt.Sprintf("job-%d", j)
			child := tr.ChildTrace(id)
			child.AddSink(perJob[j])
			for r := 0; r < runsPerJob; r++ {
				run := child.StartRun(id, map[string]any{"rep": r})
				ph := run.Phase("similarity")
				ph.Event("tick", nil)
				ph.End()
				run.Phase("assign").End()
				run.End()
			}
		}(j)
	}
	wg.Wait()

	// The merged root stream: map each run id to the trace stamped on its
	// run_start, then demand every event of that run agrees.
	root.mu.Lock()
	defer root.mu.Unlock()
	runTrace := make(map[uint64]string)
	for _, e := range root.events {
		if e.Type == "run_start" {
			if prev, dup := runTrace[e.Run]; dup && prev != e.Trace {
				t.Fatalf("run id %d reused across traces %q and %q", e.Run, prev, e.Trace)
			}
			runTrace[e.Run] = e.Trace
			// The run name encodes the job that started it; trace must match.
			if e.Trace != e.Name {
				t.Fatalf("run %q stamped with trace %q", e.Name, e.Trace)
			}
		}
	}
	if len(runTrace) != jobs*runsPerJob {
		t.Fatalf("saw %d runs, want %d", len(runTrace), jobs*runsPerJob)
	}
	for _, e := range root.events {
		if e.Run == 0 {
			continue
		}
		if want := runTrace[e.Run]; e.Trace != want {
			t.Errorf("%s event of run %d cross-stamped: trace %q, want %q", e.Type, e.Run, e.Trace, want)
		}
	}

	// Per-job sinks see only their own job's events; the shared root sees all.
	for j, s := range perJob {
		want := fmt.Sprintf("job-%d", j)
		s.mu.Lock()
		if len(s.events) == 0 {
			t.Errorf("job %d sink saw no events", j)
		}
		for _, e := range s.events {
			if e.Trace != want {
				t.Errorf("job %d sink saw foreign event with trace %q", j, e.Trace)
			}
		}
		s.mu.Unlock()
	}
}

// TestChildTraceNilSafe keeps the nil-tracer contract intact for children.
func TestChildTraceNilSafe(t *testing.T) {
	var tr *Tracer
	child := tr.ChildTrace("job")
	if child != nil {
		t.Fatal("nil tracer must hand out a nil child")
	}
	child.StartRun("A", nil).End()
	child.Emit("x", "y", nil)
}

// TestChildTraceSharesSpanIDSpace pins the merged-stream invariant: span ids
// allocated by different children never collide.
func TestChildTraceSharesSpanIDSpace(t *testing.T) {
	sink := &collectSink{}
	tr := New(sink)
	a := tr.ChildTrace("a")
	b := tr.ChildTrace("b")
	seen := make(map[uint64]bool)
	for i := 0; i < 10; i++ {
		for _, c := range []*Tracer{a, b} {
			run := c.StartRun("x", nil)
			run.End()
		}
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	for _, e := range sink.events {
		if e.Type != "run_start" {
			continue
		}
		if seen[e.Span] {
			t.Fatalf("span id %d allocated twice across children", e.Span)
		}
		seen[e.Span] = true
	}
}
