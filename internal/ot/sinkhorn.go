// Package ot implements the optimal-transport primitives behind GWL, S-GWL
// and CONE: entropically regularized optimal transport via the Sinkhorn
// algorithm, and the Gromov–Wasserstein discrepancy solved with the
// proximal-point method of Xu et al.
package ot

import (
	"context"
	"math"

	"graphalign/internal/matrix"
)

// Sinkhorn solves the entropically regularized optimal transport problem
//
//	min_T <C, T> - eps*H(T)   s.t.  T 1 = mu,  Tᵀ 1 = nu
//
// and returns the transport plan T. C is the cost matrix (len(mu) x
// len(nu)), eps the regularization strength, iters the number of
// row/column scaling rounds. Costs are stabilized by subtracting the row
// minimum before exponentiation.
func Sinkhorn(c *matrix.Dense, mu, nu []float64, eps float64, iters int) *matrix.Dense {
	t, _ := SinkhornCtx(context.Background(), c, mu, nu, eps, iters)
	return t
}

// SinkhornCtx is Sinkhorn with cooperative cancellation checked once per
// scaling round; it returns ctx.Err() and a nil plan when interrupted.
func SinkhornCtx(ctx context.Context, c *matrix.Dense, mu, nu []float64, eps float64, iters int) (*matrix.Dense, error) {
	n, m := c.Rows, c.Cols
	// Kernel K = exp(-C/eps), stabilized row by row: subtracting a per-row
	// constant from C only rescales the row's scaling factor u_i (the plan is
	// invariant), and it pins every row's largest kernel entry at exactly 1,
	// so no row underflows to all zeros however wide the cost range or small
	// eps. A single global minimum leaves rows whose costs sit far above it
	// with uniformly tiny kernels that vanish at small eps.
	k := matrix.NewDense(n, m)
	for i := 0; i < n; i++ {
		crow := c.Row(i)
		minC := math.Inf(1)
		for _, v := range crow {
			if v < minC {
				minC = v
			}
		}
		krow := k.Row(i)
		for j, v := range crow {
			krow[j] = math.Exp(-(v - minC) / eps)
		}
	}
	u := make([]float64, n)
	v := make([]float64, m)
	for i := range u {
		u[i] = 1
	}
	for j := range v {
		v[j] = 1
	}
	const tiny = 1e-300
	for it := 0; it < iters; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// u = mu ./ (K v)
		for i := 0; i < n; i++ {
			row := k.Row(i)
			var s float64
			for j, kv := range row {
				s += kv * v[j]
			}
			if s < tiny {
				s = tiny
			}
			u[i] = mu[i] / s
		}
		// v = nu ./ (Kᵀ u)
		for j := 0; j < m; j++ {
			v[j] = 0
		}
		for i := 0; i < n; i++ {
			row := k.Row(i)
			ui := u[i]
			for j, kv := range row {
				v[j] += kv * ui
			}
		}
		for j := 0; j < m; j++ {
			s := v[j]
			if s < tiny {
				s = tiny
			}
			v[j] = nu[j] / s
		}
	}
	t := matrix.NewDense(n, m)
	for i := 0; i < n; i++ {
		krow := k.Row(i)
		trow := t.Row(i)
		ui := u[i]
		for j, kv := range krow {
			trow[j] = ui * kv * v[j]
		}
	}
	return t, nil
}

// UniformWeights returns the uniform probability vector of length n.
func UniformWeights(n int) []float64 {
	w := make([]float64, n)
	if n == 0 {
		return w
	}
	inv := 1 / float64(n)
	for i := range w {
		w[i] = inv
	}
	return w
}

// DegreeWeights returns node weights proportional to degree+1, normalized
// to sum to one. S-GWL uses degree-biased node distributions.
func DegreeWeights(degrees []int) []float64 {
	w := make([]float64, len(degrees))
	var sum float64
	for i, d := range degrees {
		w[i] = float64(d) + 1
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}
