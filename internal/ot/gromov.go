package ot

import (
	"context"
	"math"

	"graphalign/internal/matrix"
)

// GWOptions configure the proximal-point Gromov–Wasserstein solver.
type GWOptions struct {
	// Beta is the proximal (entropic) regularization strength; the paper
	// tunes it to 0.025 on sparse and 0.1 on dense graphs for S-GWL.
	Beta float64
	// OuterIters is the number of proximal-point updates of the plan.
	OuterIters int
	// SinkhornIters is the number of Sinkhorn scaling rounds per outer
	// iteration.
	SinkhornIters int
}

// DefaultGWOptions mirrors the settings used in the experiments.
func DefaultGWOptions() GWOptions {
	return GWOptions{Beta: 0.1, OuterIters: 20, SinkhornIters: 30}
}

// GromovWasserstein solves
//
//	min_{T in Pi(mu, nu)} sum_{i,j,k,l} (Ca[i][k] - Cb[j][l])^2 T[i][j] T[k][l]
//
// with the proximal point method: each outer iteration linearizes the
// quadratic objective at the current plan and solves the resulting
// entropic OT problem with Sinkhorn, using the previous plan as the
// proximal prior. It returns the final plan T (len(mu) x len(nu)).
//
// The gradient uses the square-loss decomposition of Peyré et al.:
//
//	L(Ca, Cb) ⊗ T = cst - 2 * Ca T Cbᵀ
//
// where cst = (Ca∘Ca) mu 1ᵀ + 1 nuᵀ (Cb∘Cb)ᵀ depends only on the marginals.
func GromovWasserstein(ca, cb *matrix.Dense, mu, nu []float64, opts GWOptions) *matrix.Dense {
	t, _ := GromovWassersteinCtx(context.Background(), ca, cb, mu, nu, opts)
	return t
}

// GromovWassersteinCtx is GromovWasserstein with cooperative cancellation
// checked at every outer proximal iteration and every inner Sinkhorn round;
// it returns ctx.Err() and a nil plan when interrupted.
func GromovWassersteinCtx(ctx context.Context, ca, cb *matrix.Dense, mu, nu []float64, opts GWOptions) (*matrix.Dense, error) {
	n, m := ca.Rows, cb.Rows
	if opts.OuterIters <= 0 {
		opts.OuterIters = 1
	}
	// Constant part of the gradient.
	ca2mu := make([]float64, n) // (Ca ∘ Ca) mu
	for i := 0; i < n; i++ {
		row := ca.Row(i)
		var s float64
		for k, v := range row {
			s += v * v * mu[k]
		}
		ca2mu[i] = s
	}
	cb2nu := make([]float64, m) // (Cb ∘ Cb) nu
	for j := 0; j < m; j++ {
		row := cb.Row(j)
		var s float64
		for l, v := range row {
			s += v * v * nu[l]
		}
		cb2nu[j] = s
	}
	cst := matrix.NewDense(n, m)
	for i := 0; i < n; i++ {
		row := cst.Row(i)
		for j := 0; j < m; j++ {
			row[j] = ca2mu[i] + cb2nu[j]
		}
	}

	// Initial plan: product measure mu nuᵀ.
	t := matrix.Outer(mu, nu)
	grad := matrix.NewDense(n, m)
	for it := 0; it < opts.OuterIters; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// grad = cst - 2 * Ca T Cbᵀ
		caT := matrix.Mul(ca, t)         // n x m
		caTcbT := matrix.MulABT(caT, cb) // n x m  (caT * cbᵀ)
		copy(grad.Data, cst.Data)
		grad.AddScaled(caTcbT, -2)
		// Proximal step: cost = grad - beta * log(T_prev); folding the log
		// prior into the kernel is equivalent to Sinkhorn on
		// exp(-(grad)/beta) ∘ T_prev.
		prox := matrix.NewDense(n, m)
		for i := range prox.Data {
			prox.Data[i] = grad.Data[i]
		}
		tNew, err := sinkhornWithPrior(ctx, prox, t, mu, nu, opts.Beta, opts.SinkhornIters)
		if err != nil {
			return nil, err
		}
		t = tNew
	}
	return t, nil
}

// sinkhornWithPrior solves min <C,T> + beta*KL(T || prior) over Pi(mu, nu)
// by scaling the kernel prior ∘ exp(-C/beta), checking ctx once per round.
func sinkhornWithPrior(ctx context.Context, c, prior *matrix.Dense, mu, nu []float64, beta float64, iters int) (*matrix.Dense, error) {
	n, m := c.Rows, c.Cols
	minC := c.Data[0]
	for _, v := range c.Data {
		if v < minC {
			minC = v
		}
	}
	k := matrix.NewDense(n, m)
	for i, v := range c.Data {
		k.Data[i] = prior.Data[i] * expStable(-(v-minC)/beta)
	}
	u := make([]float64, n)
	v := make([]float64, m)
	for i := range u {
		u[i] = 1
	}
	for j := range v {
		v[j] = 1
	}
	const tiny = 1e-300
	for it := 0; it < iters; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			row := k.Row(i)
			var s float64
			for j, kv := range row {
				s += kv * v[j]
			}
			if s < tiny {
				s = tiny
			}
			u[i] = mu[i] / s
		}
		for j := 0; j < m; j++ {
			v[j] = 0
		}
		for i := 0; i < n; i++ {
			row := k.Row(i)
			ui := u[i]
			for j, kv := range row {
				v[j] += kv * ui
			}
		}
		for j := 0; j < m; j++ {
			s := v[j]
			if s < tiny {
				s = tiny
			}
			v[j] = nu[j] / s
		}
	}
	t := matrix.NewDense(n, m)
	for i := 0; i < n; i++ {
		krow := k.Row(i)
		trow := t.Row(i)
		ui := u[i]
		for j, kv := range krow {
			trow[j] = ui * kv * v[j]
		}
	}
	return t, nil
}

func expStable(x float64) float64 {
	if x < -700 {
		return 0
	}
	if x > 700 {
		x = 700
	}
	return math.Exp(x)
}

// GWDiscrepancy evaluates the Gromov–Wasserstein objective at plan t.
func GWDiscrepancy(ca, cb, t *matrix.Dense, mu, nu []float64) float64 {
	// <cst - 2 Ca T Cbᵀ, T> with cst as in GromovWasserstein.
	n, m := ca.Rows, cb.Rows
	caT := matrix.Mul(ca, t)
	caTcbT := matrix.MulABT(caT, cb)
	var obj float64
	for i := 0; i < n; i++ {
		rowA := ca.Row(i)
		var a2 float64
		for k, v := range rowA {
			a2 += v * v * mu[k]
		}
		trow := t.Row(i)
		grow := caTcbT.Row(i)
		for j := 0; j < m; j++ {
			rowB := cb.Row(j)
			var b2 float64
			for l, v := range rowB {
				b2 += v * v * nu[l]
			}
			obj += (a2 + b2 - 2*grow[j]) * trow[j]
		}
	}
	return obj
}
