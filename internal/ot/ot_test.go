package ot

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"graphalign/internal/matrix"
)

func TestUniformWeights(t *testing.T) {
	w := UniformWeights(4)
	for _, v := range w {
		if v != 0.25 {
			t.Fatalf("weights = %v", w)
		}
	}
	if len(UniformWeights(0)) != 0 {
		t.Error("zero-length weights")
	}
}

func TestDegreeWeights(t *testing.T) {
	w := DegreeWeights([]int{1, 3})
	if math.Abs(w[0]-2.0/6) > 1e-12 || math.Abs(w[1]-4.0/6) > 1e-12 {
		t.Errorf("degree weights = %v", w)
	}
	var sum float64
	for _, v := range w {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Error("weights must sum to 1")
	}
}

func TestSinkhornMarginals(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 6, 8
		c := matrix.NewDense(n, m)
		for i := range c.Data {
			c.Data[i] = rng.Float64()
		}
		mu := UniformWeights(n)
		nu := UniformWeights(m)
		plan := Sinkhorn(c, mu, nu, 0.1, 300)
		// Column marginals converge exactly after a v-update; rows nearly.
		rows := plan.RowSums()
		cols := plan.ColSums()
		for i, r := range rows {
			if math.Abs(r-mu[i]) > 1e-6 {
				return false
			}
		}
		for j, cv := range cols {
			if math.Abs(cv-nu[j]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSinkhornPrefersCheapCells(t *testing.T) {
	// 2x2 with a clearly cheap diagonal: the plan must put most mass there.
	c := matrix.DenseFromRows([][]float64{{0, 10}, {10, 0}})
	plan := Sinkhorn(c, UniformWeights(2), UniformWeights(2), 0.2, 200)
	if plan.At(0, 0) < plan.At(0, 1) || plan.At(1, 1) < plan.At(1, 0) {
		t.Errorf("plan ignores costs: %v", plan.Data)
	}
}

func TestGromovWassersteinIdentifiesIsomorphicStructure(t *testing.T) {
	// Two copies of the same weighted structure, one with permuted indices;
	// GW should put the bulk of each row's mass on the true counterpart.
	n := 8
	rng := rand.New(rand.NewSource(3))
	ca := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := rng.Float64()
			ca.Set(i, j, v)
			ca.Set(j, i, v)
		}
	}
	perm := rng.Perm(n)
	cb := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			cb.Set(perm[i], perm[j], ca.At(i, j))
		}
	}
	mu := UniformWeights(n)
	plan := GromovWasserstein(ca, cb, mu, mu, GWOptions{Beta: 0.02, OuterIters: 40, SinkhornIters: 50})
	correct := 0
	for i := 0; i < n; i++ {
		best := 0
		row := plan.Row(i)
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		if best == perm[i] {
			correct++
		}
	}
	if correct < n*3/4 {
		t.Errorf("GW recovered %d/%d matches", correct, n)
	}
}

func TestGWDiscrepancyZeroForIdentical(t *testing.T) {
	n := 5
	ca := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				ca.Set(i, j, 1)
			}
		}
	}
	mu := UniformWeights(n)
	// Identity-ish plan: diagonal mass.
	plan := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		plan.Set(i, i, 1.0/float64(n))
	}
	d := GWDiscrepancy(ca, ca, plan, mu, mu)
	if math.Abs(d) > 1e-9 {
		t.Errorf("discrepancy of identical structures under identity plan = %v", d)
	}
	// A maximally wrong cost pairing must score strictly worse.
	cb := matrix.NewDense(n, n) // all-zero costs
	d2 := GWDiscrepancy(ca, cb, plan, mu, mu)
	if d2 <= d {
		t.Errorf("mismatched structures should have higher discrepancy: %v <= %v", d2, d)
	}
}

func TestGromovWassersteinMarginals(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n, m := 6, 7
	ca := matrix.NewDense(n, n)
	cb := matrix.NewDense(m, m)
	for i := range ca.Data {
		ca.Data[i] = rng.Float64()
	}
	for i := range cb.Data {
		cb.Data[i] = rng.Float64()
	}
	mu := UniformWeights(n)
	nu := UniformWeights(m)
	plan := GromovWasserstein(ca, cb, mu, nu, DefaultGWOptions())
	cols := plan.ColSums()
	for j, cv := range cols {
		if math.Abs(cv-nu[j]) > 1e-6 {
			t.Fatalf("column marginal %d = %v, want %v", j, cv, nu[j])
		}
	}
}

func TestGromovWassersteinExtremeBeta(t *testing.T) {
	// Near-zero and huge regularization must both stay finite (no NaN/Inf
	// transport mass).
	rng := rand.New(rand.NewSource(12))
	n := 6
	ca := matrix.NewDense(n, n)
	for i := range ca.Data {
		ca.Data[i] = rng.Float64()
	}
	mu := UniformWeights(n)
	for _, beta := range []float64{1e-9, 1e3} {
		plan := GromovWasserstein(ca, ca, mu, mu, GWOptions{Beta: beta, OuterIters: 5, SinkhornIters: 10})
		for i, v := range plan.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("beta=%v: plan[%d] = %v", beta, i, v)
			}
		}
	}
}

func TestSinkhornExtremeEps(t *testing.T) {
	c := matrix.DenseFromRows([][]float64{{0, 1e6}, {1e6, 0}})
	mu := UniformWeights(2)
	for _, eps := range []float64{1e-9, 1e6} {
		plan := Sinkhorn(c, mu, mu, eps, 50)
		for i, v := range plan.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("eps=%v: plan[%d] = %v", eps, i, v)
			}
		}
	}
}

func TestSinkhornRowStabilizationAvoidsUnderflow(t *testing.T) {
	// Row 1's costs sit a huge constant above row 0's. Stabilizing by the
	// global minimum would evaluate exp(-1e6/eps) for every entry of row 1 —
	// exactly zero in float64 at this eps — leaving the row with no mass to
	// scale and an all-zero plan row. Per-row stabilization pins each row's
	// best entry at exp(0) = 1, so both rows keep their marginal mass.
	c := matrix.DenseFromRows([][]float64{
		{0, 1},
		{1e6, 1e6 + 1},
	})
	mu := UniformWeights(2)
	plan := Sinkhorn(c, mu, mu, 0.05, 100)
	for i := 0; i < 2; i++ {
		var rowMass float64
		for _, v := range plan.Row(i) {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("plan[%d] contains %v", i, v)
			}
			rowMass += v
		}
		if math.Abs(rowMass-mu[i]) > 1e-6 {
			t.Errorf("row %d mass = %v, want %v (underflowed row?)", i, rowMass, mu[i])
		}
	}
}

func TestSinkhornCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := matrix.DenseFromRows([][]float64{{0, 1}, {1, 0}})
	mu := UniformWeights(2)
	if _, err := SinkhornCtx(ctx, c, mu, mu, 0.1, 50); err != context.Canceled {
		t.Errorf("SinkhornCtx err = %v, want context.Canceled", err)
	}
	if _, err := GromovWassersteinCtx(ctx, c, c, mu, mu, GWOptions{Beta: 0.1, OuterIters: 5, SinkhornIters: 5}); err == nil {
		t.Error("GromovWassersteinCtx ignored a cancelled context")
	}
}
