package parallel

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 257
		var hits [n]atomic.Int32
		For(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEmpty(t *testing.T) {
	called := false
	For(4, 0, func(int) { called = true })
	For(4, -1, func(int) { called = true })
	if called {
		t.Error("fn called for empty range")
	}
}

func TestForSingleWorkerRunsInOrder(t *testing.T) {
	var order []int
	For(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("single-worker order = %v", order)
		}
	}
}

func TestBlocksPartition(t *testing.T) {
	for _, tc := range []struct{ workers, n int }{
		{1, 10}, {3, 10}, {4, 4}, {8, 3}, {5, 0},
	} {
		const max = 64
		var hits [max]atomic.Int32
		Blocks(tc.workers, tc.n, func(lo, hi int) {
			if lo >= hi {
				t.Errorf("workers=%d n=%d: empty block [%d,%d)", tc.workers, tc.n, lo, hi)
			}
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		})
		for i := 0; i < tc.n; i++ {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d n=%d: index %d covered %d times", tc.workers, tc.n, i, got)
			}
		}
		for i := tc.n; i < max; i++ {
			if hits[i].Load() != 0 {
				t.Fatalf("workers=%d n=%d: index %d out of range touched", tc.workers, tc.n, i)
			}
		}
	}
}

func TestHooksBalance(t *testing.T) {
	var starts, stops atomic.Int64
	SetHooks(func() { starts.Add(1) }, func() { stops.Add(1) })
	defer SetHooks(nil, nil)

	For(4, 100, func(int) {})
	Blocks(4, 100, func(lo, hi int) {})
	if s, e := starts.Load(), stops.Load(); s == 0 || s != e {
		t.Errorf("hooks unbalanced: %d starts, %d stops", s, e)
	}

	// The inline single-worker path must not report workers.
	before := starts.Load()
	For(1, 10, func(int) {})
	Blocks(1, 10, func(lo, hi int) {})
	if starts.Load() != before {
		t.Error("inline path fired worker hooks")
	}

	// Removing the hooks silences reporting.
	SetHooks(nil, nil)
	before = starts.Load()
	For(4, 50, func(int) {})
	if starts.Load() != before {
		t.Error("hooks fired after removal")
	}
}

func TestHooksConcurrentSetRemove(t *testing.T) {
	var starts, stops atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			SetHooks(func() { starts.Add(1) }, func() { stops.Add(1) })
			SetHooks(nil, nil)
		}
	}()
	for i := 0; i < 50; i++ {
		For(4, 20, func(int) {})
	}
	<-done
	SetHooks(nil, nil)
	if starts.Load() != stops.Load() {
		t.Errorf("racing SetHooks unbalanced the pair: %d starts, %d stops",
			starts.Load(), stops.Load())
	}
}

func TestForCtxRunsAllWithoutCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran [40]atomic.Int64
		if err := ForCtx(context.Background(), workers, len(ran), func(i int) {
			ran[i].Add(1)
		}); err != nil {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		for i := range ran {
			if got := ran[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForCtxStopsClaimingOnCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		const n = 1000
		var ran [n]atomic.Int64
		var count atomic.Int64
		err := ForCtx(ctx, workers, n, func(i int) {
			ran[i].Add(1)
			if count.Add(1) == 10 {
				cancel()
			}
		})
		cancel()
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if got := count.Load(); got >= n {
			t.Errorf("workers=%d: cancellation did not stop the loop (%d ran)", workers, got)
		}
		// Executed indices must form a contiguous prefix: once a gap
		// appears, nothing after it may have run.
		gap := false
		for i := 0; i < n; i++ {
			if ran[i].Load() == 0 {
				gap = true
			} else if gap {
				t.Fatalf("workers=%d: index %d ran after a skipped index", workers, i)
			}
		}
	}
}

func TestForCtxPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var count atomic.Int64
	if err := ForCtx(ctx, 4, 100, func(int) { count.Add(1) }); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if count.Load() != 0 {
		t.Errorf("%d iterations ran under a pre-cancelled context", count.Load())
	}
}
