// Package parallel provides the small bounded worker pool shared by the
// experiment runner and the matrix kernels. It has two primitives: For,
// which hands individual iterations to a fixed set of workers (good for
// coarse, uneven work such as algorithm runs), and Blocks, which splits an
// index range into one contiguous block per worker (good for row-blocked
// matrix kernels, where contiguity keeps writes cache-friendly and disjoint).
//
// Both primitives block until every iteration has returned, never spawn more
// goroutines than there is work, and degrade to a plain inline loop when
// given a single worker — so callers can use them unconditionally and steer
// concurrency with a single integer.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count: values <= 0 mean "one per
// available CPU" (GOMAXPROCS).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// hookSet carries the observability callbacks installed by SetHooks.
type hookSet struct {
	onStart, onStop func()
}

var hooks atomic.Pointer[hookSet]

// SetHooks installs observability callbacks invoked when a pooled worker
// goroutine starts and stops (obsv.PoolHooks builds a pair tracking pool
// occupancy). The inline single-worker fast path runs on the caller's
// goroutine and is not reported. Passing nil, nil removes the hooks. The
// callbacks must be safe for concurrent use; they observe only, so
// installing them never changes scheduling or results.
func SetHooks(onStart, onStop func()) {
	if onStart == nil && onStop == nil {
		hooks.Store(nil)
		return
	}
	hooks.Store(&hookSet{onStart: onStart, onStop: onStop})
}

// workerStart fires the start hook and returns the matching stop callback,
// pinning one hookSet so a concurrent SetHooks cannot unbalance the pair.
func workerStart() (stop func()) {
	h := hooks.Load()
	if h == nil {
		return nil
	}
	if h.onStart != nil {
		h.onStart()
	}
	return h.onStop
}

// For runs fn(i) for every i in [0, n) across at most workers goroutines.
// Iterations are claimed from a shared atomic counter, so long iterations do
// not stall short ones queued behind them. fn must be safe for concurrent
// invocation; writes to shared state must be synchronized by the caller
// (writing fn(i)'s result to slot i of a preallocated slice is safe without
// locks). workers <= 0 means GOMAXPROCS; with one worker or n <= 1 the loop
// runs inline on the calling goroutine.
func For(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			if stop := workerStart(); stop != nil {
				defer stop()
			}
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				fn(int(i))
			}
		}()
	}
	wg.Wait()
}

// ForCtx is For with cooperative cancellation: once ctx is done, workers
// stop claiming new iterations and ForCtx returns ctx.Err(). Iterations
// already started run to completion — fn itself decides whether to observe
// ctx — so on return no invocation of fn is still in flight. Indices at or
// after the first unclaimed one are never passed to fn; the caller can
// detect the gap from its own per-slot state. A nil-error return means every
// iteration ran.
func ForCtx(ctx context.Context, workers, n int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			if stop := workerStart(); stop != nil {
				defer stop()
			}
			for ctx.Err() == nil {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				fn(int(i))
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// Blocks partitions [0, n) into at most workers contiguous blocks and runs
// fn(lo, hi) once per block, each on its own goroutine. Blocks differ in
// size by at most one. The same concurrency rules as For apply; with one
// worker or n <= 1 the single block runs inline.
func Blocks(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	size, rem := n/workers, n%workers
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + size
		if w < rem {
			hi++
		}
		go func(lo, hi int) {
			defer wg.Done()
			if stop := workerStart(); stop != nil {
				defer stop()
			}
			fn(lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
}
