package incremental

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"graphalign/internal/algo"
	"graphalign/internal/algo/nsd"
	"graphalign/internal/algo/regal"
	"graphalign/internal/gen"
	"graphalign/internal/graph"
	"graphalign/internal/noise"
)

// The evolving-graph benchmark pair: steady-state warm Apply versus a cold
// re-alignment (fresh session: embeddings, candidate lists, auction from
// scratch) on the same instance, for the two aligners the incremental mode
// targets. scripts/bench_incremental.sh runs both and derives the speedup
// ratio recorded in BENCH_incremental.json.
//
// INCR_BENCH_N overrides the instance size (default 10000); edit batches are
// 1% of the edge count. The session runs with a relative column tolerance
// and a 2-hop structural dirty scope — the configuration DESIGN.md §16
// recommends for global-basis embeddings, where unbounded refresh would mark
// nearly every candidate list dirty and forfeit the warm path.
func benchN() int {
	if s := os.Getenv("INCR_BENCH_N"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 10000
}

// benchOpts is the tuned steady-state configuration (tolerance sweep at
// n=2000, 1% batches): ColTolerance 0.2 keeps the changed-column set small
// enough that the candidate merge runs in O(delta); DriftThreshold 0.25
// routes the dirty-heavy applies (REGAL: every changed column appears in
// ~n·K/m candidate lists, so dirty ≈ 10× chCols) to the cold auction over
// the augmented candidate set — still ~50× cheaper than the dense-JV
// fallback the auction took before matchability repair — while NSD's small
// dirty sets keep the warm path.
func benchOpts() Options {
	return Options{
		TopK:           10,
		ColTolerance:   0.2,
		DirtyHops:      2,
		DriftThreshold: 0.25,
	}
}

func benchAligner(b *testing.B, name string) algo.Aligner {
	b.Helper()
	switch name {
	case "REGAL":
		r := regal.New()
		// Match the session's column tolerance so signature drift below the
		// staleness bound is absorbed at the refresher, not re-diffed here.
		r.RefreshTol = 0.2
		return r
	case "NSD":
		return nsd.New()
	}
	b.Fatalf("unknown bench aligner %s", name)
	return nil
}

func benchInstance(b *testing.B, n int) (*graph.Graph, *graph.Graph) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	src := gen.ErdosRenyi(n, 8/float64(n), rng)
	pair, err := noise.Apply(src, noise.OneWay, 0.02, noise.Options{}, rng)
	if err != nil {
		b.Fatal(err)
	}
	return pair.Source, pair.Target
}

// BenchmarkSteadyStateApply measures one warm incremental re-alignment per
// iteration: a fresh 1%-of-edges edit batch is generated against the current
// target, applied, and re-solved with the warm-started auction.
func BenchmarkSteadyStateApply(b *testing.B) {
	n := benchN()
	for _, name := range []string{"REGAL", "NSD"} {
		b.Run(fmt.Sprintf("%s_n%d", name, n), func(b *testing.B) {
			src, dst := benchInstance(b, n)
			sess, err := NewSession(context.Background(), benchAligner(b, name), src, dst, benchOpts())
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			warm := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				batch, err := noise.EditBatch(sess.Target(), 0.01, rng)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				st, err := sess.Apply(context.Background(), batch)
				if err != nil {
					b.Fatal(err)
				}
				if st.Warm {
					warm++
				}
			}
			b.ReportMetric(float64(warm)/float64(b.N), "warm-frac")
		})
	}
}

// BenchmarkColdRealign is the baseline the steady-state benchmark is
// compared against: a full from-scratch alignment (embeddings, candidate
// generation, assignment) of the same evolving instance after one 1% edit
// batch — what a non-incremental deployment pays on every change.
func BenchmarkColdRealign(b *testing.B) {
	n := benchN()
	for _, name := range []string{"REGAL", "NSD"} {
		b.Run(fmt.Sprintf("%s_n%d", name, n), func(b *testing.B) {
			src, dst := benchInstance(b, n)
			rng := rand.New(rand.NewSource(7))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				batch, err := noise.EditBatch(dst, 0.01, rng)
				if err != nil {
					b.Fatal(err)
				}
				next, err := graph.ApplyEdits(dst, batch)
				if err != nil {
					b.Fatal(err)
				}
				dst = next
				// A fresh aligner instance per iteration: cached artifacts
				// would let the "cold" path cheat via the embed memoization.
				a := benchAligner(b, name)
				b.StartTimer()
				if _, err := NewSession(context.Background(), a, src, dst, benchOpts()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
