package incremental

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"graphalign/internal/algo"
	"graphalign/internal/algo/lrea"
	"graphalign/internal/algo/nsd"
	"graphalign/internal/algo/regal"
	"graphalign/internal/assign"
	"graphalign/internal/cache"
	"graphalign/internal/gen"
	"graphalign/internal/graph"
	"graphalign/internal/matrix"
	"graphalign/internal/noise"
	"graphalign/internal/obsv"
)

// localAligner embeds each node by purely local structure — (1+degree,
// sum of neighbor degrees) — so a graph edit changes only the embedding
// rows within two hops of the edited endpoints. That makes it the ideal
// probe for the incremental pipeline: change detection at ColTolerance 0 is
// exact, small edits keep the dirty set small, and the warm path genuinely
// exercises partial re-bidding.
type localAligner struct{}

func (localAligner) Name() string                     { return "local-test" }
func (localAligner) DefaultAssignment() assign.Method { return assign.JonkerVolgenant }
func localEmbed(g *graph.Graph) *matrix.Dense {
	m := matrix.NewDense(g.N(), 3)
	for u := 0; u < g.N(); u++ {
		row := m.Row(u)
		row[0] = float64(1 + len(g.Neighbors(u)))
		for _, v := range g.Neighbors(u) {
			row[1] += float64(len(g.Neighbors(v)))
		}
		// A small node-id component breaks structural ties so the top-k
		// candidate graph stays matchable on these small random instances.
		row[2] = 0.3 * float64(u)
	}
	return m
}

func (localAligner) EmbeddingsCtx(_ context.Context, src, dst *graph.Graph) (*assign.Embedding, error) {
	return &assign.Embedding{
		Src:          localEmbed(src),
		Dst:          localEmbed(dst),
		SimFromDist2: func(d2 float64) float64 { return -d2 },
	}, nil
}

func (a localAligner) Similarity(src, dst *graph.Graph) (*matrix.Dense, error) {
	e, _ := a.EmbeddingsCtx(context.Background(), src, dst)
	return e.Similarity(), nil
}

// degreeAligner embeds each node as (1+degree, 0.3·id) — a one-hop feature
// whose edit footprint is just the four edited endpoints, keeping the dirty
// set well under the drift threshold so the warm auction path runs with
// genuine partial re-bidding.
type degreeAligner struct{}

func (degreeAligner) Name() string                     { return "degree-test" }
func (degreeAligner) DefaultAssignment() assign.Method { return assign.JonkerVolgenant }
func degreeEmbed(g *graph.Graph) *matrix.Dense {
	m := matrix.NewDense(g.N(), 2)
	for u := 0; u < g.N(); u++ {
		m.Row(u)[0] = float64(1 + len(g.Neighbors(u)))
		m.Row(u)[1] = 0.3 * float64(u)
	}
	return m
}

func (degreeAligner) EmbeddingsCtx(_ context.Context, src, dst *graph.Graph) (*assign.Embedding, error) {
	return &assign.Embedding{
		Src:          degreeEmbed(src),
		Dst:          degreeEmbed(dst),
		SimFromDist2: func(d2 float64) float64 { return -d2 },
	}, nil
}

func (a degreeAligner) Similarity(src, dst *graph.Graph) (*matrix.Dense, error) {
	e, _ := a.EmbeddingsCtx(context.Background(), src, dst)
	return e.Similarity(), nil
}

// denseOnlyAligner exposes neither embeddings nor factors.
type denseOnlyAligner struct{}

func (denseOnlyAligner) Name() string                     { return "dense-only" }
func (denseOnlyAligner) DefaultAssignment() assign.Method { return assign.JonkerVolgenant }
func (denseOnlyAligner) Similarity(src, dst *graph.Graph) (*matrix.Dense, error) {
	return matrix.NewDense(src.N(), dst.N()), nil
}

func testPair(t *testing.T, n int, seed int64) (*graph.Graph, *graph.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	src := gen.ErdosRenyi(n, 4/float64(n), rng)
	pair, err := noise.Apply(src, noise.OneWay, 0.05, noise.Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return pair.Source, pair.Target
}

// randomBatch builds a small applicable edit batch against g.
func randomBatch(t *testing.T, g *graph.Graph, size int, rng *rand.Rand) []graph.Edit {
	t.Helper()
	batch, err := noise.EditBatch(g, float64(size)/float64(1+g.M()), rng)
	if err != nil {
		t.Fatal(err)
	}
	return batch
}

func checkPermutation(t *testing.T, tag string, mapping []int, m int) {
	t.Helper()
	seen := make([]bool, m)
	for i, j := range mapping {
		if j < 0 || j >= m {
			t.Fatalf("%s: row %d mapped to %d (m=%d)", tag, i, j, m)
		}
		if seen[j] {
			t.Fatalf("%s: column %d assigned twice", tag, j)
		}
		seen[j] = true
	}
}

// Satellite 3 (PR 10): an empty edit batch must reproduce the previous
// mapping byte-for-byte through the full incremental path — recompute,
// change detection, candidate update and warm solve — with zero bidding
// rounds and no dirty rows.
func TestSessionNoopByteIdentical(t *testing.T) {
	src, dst := testPair(t, 40, 1)
	ctx := context.Background()
	s, err := NewSession(ctx, localAligner{}, src, dst, Options{TopK: 16})
	if err != nil {
		t.Fatal(err)
	}
	before := s.Mapping()
	for rep := 0; rep < 3; rep++ {
		st, err := s.Apply(ctx, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Noop || !st.Warm {
			t.Fatalf("rep %d: stats = %+v, want noop warm apply", rep, st)
		}
		if st.DirtyRows != 0 || st.Rounds != 0 || st.RebidRows != 0 {
			t.Fatalf("rep %d: noop apply did work: %+v", rep, st)
		}
		if got := s.Mapping(); !reflect.DeepEqual(got, before) {
			t.Fatalf("rep %d: noop apply changed the mapping:\n got  %v\n want %v", rep, got, before)
		}
	}
}

// Satellite 3 (PR 10): across random edit streams the warm-started session
// must stay within the ε-scaling tolerance of a cold re-alignment of the
// edited instance. With bitwise change detection the session's candidate
// sets equal a cold rebuild's exactly, so both solves carry the same
// Cols·FinalEps bound over the same candidate graph and their totals can
// differ only by twice that bound — far under the 0.05 asserted here
// against totals in the thousands.
func TestSessionMatchesColdAcrossEdits(t *testing.T) {
	src, dst := testPair(t, 150, 2)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	s, err := NewSession(ctx, degreeAligner{}, src, dst, Options{TopK: 8})
	if err != nil {
		t.Fatal(err)
	}
	warmApplies := 0
	cur := dst
	for step := 0; step < 8; step++ {
		batch := randomBatch(t, cur, 1, rng)
		st, err := s.Apply(ctx, batch)
		if err != nil {
			t.Fatal(err)
		}
		var applyErr error
		cur, applyErr = graph.ApplyEdits(cur, batch)
		if applyErr != nil {
			t.Fatal(applyErr)
		}
		if st.Warm {
			warmApplies++
		}
		checkPermutation(t, "session", s.Mapping(), cur.N())

		cold, err := NewSession(ctx, degreeAligner{}, src, cur, Options{TopK: 8})
		if err != nil {
			t.Fatal(err)
		}
		sim, _ := degreeAligner{}.Similarity(src, cur)
		got := assign.TotalSimilarity(sim, s.Mapping())
		want := assign.TotalSimilarity(sim, cold.Mapping())
		if math.Abs(want-got) > 0.05 {
			t.Fatalf("step %d: warm total %v vs cold total %v (gap %v)", step, got, want, want-got)
		}
	}
	if warmApplies == 0 {
		t.Fatal("no apply took the warm path; the test exercised nothing")
	}
}

// The drift gate must force a cold solve once the dirty fraction crosses
// the threshold, and count it.
func TestSessionDriftGateColdFallback(t *testing.T) {
	src, dst := testPair(t, 40, 3)
	ctx := context.Background()
	reg := obsv.NewRegistry()
	s, err := NewSession(ctx, localAligner{}, src, dst, Options{
		TopK: 16, DriftThreshold: 1e-9, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	var saw bool
	for step := 0; step < 5 && !saw; step++ {
		st, err := s.Apply(ctx, randomBatch(t, s.Target(), 3, rng))
		if err != nil {
			t.Fatal(err)
		}
		saw = st.DirtyRows > 0
		if saw && st.Warm {
			t.Fatalf("dirty apply warm-started past a near-zero drift threshold: %+v", st)
		}
	}
	if !saw {
		t.Skip("edit stream never dirtied a candidate row")
	}
	if reg.Counter("incr_cold_fallbacks_total").Value() == 0 {
		t.Error("cold fallback not counted")
	}
}

// Worker count must not change results anywhere in the incremental path.
func TestSessionWorkerDeterminism(t *testing.T) {
	src, dst := testPair(t, 40, 5)
	ctx := context.Background()
	run := func(workers int) [][]int {
		s, err := NewSession(ctx, localAligner{}, src, dst, Options{TopK: 16, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(6))
		out := [][]int{s.Mapping()}
		for step := 0; step < 4; step++ {
			if _, err := s.Apply(ctx, randomBatch(t, s.Target(), 2, rng)); err != nil {
				t.Fatal(err)
			}
			out = append(out, s.Mapping())
		}
		return out
	}
	if a, b := run(1), run(4); !reflect.DeepEqual(a, b) {
		t.Fatal("mappings differ between 1 and 4 workers")
	}
}

// The real aligners of the paper must flow through the session: REGAL's
// embeddings and LREA's factors, across edits, with valid one-to-one
// output and working noop replay. (REGAL and NSD move every embedding row
// on any edit — global bases — so these run with a small relative
// tolerance and mostly exercise the fallback-heavy regime; the warm-path
// guarantees are pinned by the local-aligner tests above.)
func TestSessionRealAligners(t *testing.T) {
	src, dst := testPair(t, 30, 8)
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		mk   func() algo.Aligner
	}{
		{"regal", func() algo.Aligner { return regal.New() }},
		{"lrea", func() algo.Aligner { return lrea.New() }},
		{"nsd", func() algo.Aligner { return nsd.New() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewSession(ctx, tc.mk(), src, dst, Options{
				TopK: 10, ColTolerance: 1e-6, Cache: cache.New(0),
			})
			if err != nil {
				t.Fatal(err)
			}
			checkPermutation(t, tc.name, s.Mapping(), dst.N())
			before := s.Mapping()
			rng := rand.New(rand.NewSource(9))
			for step := 0; step < 3; step++ {
				st, err := s.Apply(ctx, randomBatch(t, s.Target(), 2, rng))
				if err != nil {
					t.Fatal(err)
				}
				checkPermutation(t, tc.name, s.Mapping(), s.Target().N())
				_ = st
			}
			st, err := s.Apply(ctx, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !st.Noop || st.DirtyRows != 0 || st.Rounds != 0 {
				t.Fatalf("noop apply did work: %+v", st)
			}
			_ = before
		})
	}
}

// Dense-only aligners cannot run incrementally and must be rejected.
func TestSessionRejectsDenseOnly(t *testing.T) {
	src, dst := testPair(t, 10, 10)
	_, err := NewSession(context.Background(), denseOnlyAligner{}, src, dst, Options{TopK: 4})
	if !errors.Is(err, ErrNotIncremental) {
		t.Fatalf("err = %v, want ErrNotIncremental", err)
	}
}

// The incr_* instruments must be populated by session activity.
func TestSessionMetrics(t *testing.T) {
	src, dst := testPair(t, 30, 11)
	ctx := context.Background()
	reg := obsv.NewRegistry()
	c := cache.New(0)
	s, err := NewSession(ctx, localAligner{}, src, dst, Options{TopK: 16, Registry: reg, Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(ctx, nil); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	if _, err := s.Apply(ctx, randomBatch(t, s.Target(), 2, rng)); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("incr_sessions_total").Value(); got != 1 {
		t.Errorf("incr_sessions_total = %d, want 1", got)
	}
	if got := reg.Counter("incr_applies_total").Value(); got != 2 {
		t.Errorf("incr_applies_total = %d, want 2", got)
	}
	if got := reg.Counter("incr_noop_total").Value(); got != 1 {
		t.Errorf("incr_noop_total = %d, want 1", got)
	}
	// A noop apply leaves every target component's artifacts intact, so
	// component hits must have accrued.
	if got := reg.Counter("incr_cache_component_hits_total").Value(); got == 0 {
		t.Error("incr_cache_component_hits_total stayed zero across a noop apply")
	}
	if got := reg.Histogram("incr_dirty_rows", obsv.SizeBuckets()).Snapshot().Count; got != 2 {
		t.Errorf("incr_dirty_rows observations = %d, want 2", got)
	}
}
