// Package incremental implements the evolving-graph alignment mode: a
// Session holds one (source, target) alignment and re-aligns after each
// batch of edge edits to the target by reusing everything the edit did not
// invalidate — per-component cache artifacts, the per-row top-k candidate
// lists, and the auction solver's price vector (warm start). Re-alignment
// cost then scales with the size of the edit's footprint instead of the
// instance, while the result keeps the cold sparse pipeline's accuracy
// contract: the matched total stays within Cols·FinalEps of the candidate-
// graph optimum, and an empty edit batch reproduces the previous mapping
// byte-for-byte. See DESIGN.md §16.
package incremental

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"graphalign/internal/algo"
	"graphalign/internal/assign"
	"graphalign/internal/cache"
	"graphalign/internal/graph"
	"graphalign/internal/matrix"
	"graphalign/internal/obsv"
)

// Options configures a Session. TopK is required; the zero value of every
// other field is a sensible default.
type Options struct {
	// TopK is the sparse pipeline's per-row candidate count (required > 0).
	TopK int
	// Workers bounds intra-session parallelism (candidate generation and
	// auction bidding); 0 means one per CPU. Results are identical for any
	// value.
	Workers int
	// DriftThreshold is the fraction of candidate rows that may go dirty in
	// one apply before the warm start is abandoned for a cold solve (a warm
	// start that re-bids most rows does strictly more work than a cold
	// ε-scaled solve and loses its price-seeding advantage). <= 0 means the
	// default 0.5; >= 1 disables the gate.
	DriftThreshold float64
	// ColTolerance controls which embedding rows count as changed after a
	// refresh. 0 compares bitwise — exact, but global-basis methods (REGAL's
	// Nyström landmarks, NSD's SVD) move every row a little on any edit, so
	// bitwise comparison marks everything dirty. > 0 treats a row as changed
	// only when max|new-old| / (max|old| + 1e-12) exceeds it; rows within
	// tolerance keep their previous embedding (and hence candidate lists)
	// until accumulated movement since their last refresh crosses the
	// threshold, bounding the staleness. < 0 forces every row dirty on every
	// apply (a debugging knob: full rebuild through the incremental path).
	ColTolerance float64
	// DirtyHops, when positive, restricts each apply's target-side refresh
	// to nodes within that many hops (pre- or post-edit adjacency) of an
	// edited endpoint — the structural dirty set. Global-basis aligners
	// (REGAL, NSD) move every embedding row a little on any edit; the hop
	// bound keeps the refresh footprint proportional to the edit instead of
	// the graph, trading bounded staleness far from the edit for
	// incremental-scale work. 0 leaves the refresh purely
	// tolerance-governed.
	DirtyHops int
	// Tracer receives one run span per Apply with refresh/candidates/solve
	// phases; nil disables tracing.
	Tracer *obsv.Tracer
	// Registry receives the incr_* counters and histograms; when nil the
	// Tracer's registry is used (nil-safe all the way down).
	Registry *obsv.Registry
	// Cache, when set, is attached to the aligner (algo.Cacheable) and used
	// for per-component artifact reuse accounting across edits.
	Cache *cache.Cache
}

// ApplyStats describes one Apply call.
type ApplyStats struct {
	// Edits is the number of edit operations in the batch.
	Edits int
	// ChangedRows / ChangedCols are the embedding rows (source side) and
	// columns (target side) that moved beyond ColTolerance in the refresh.
	ChangedRows int
	ChangedCols int
	// DirtyRows is the number of candidate rows whose top-k lists actually
	// changed — the warm auction's re-bid set.
	DirtyRows int
	// AugmentedRows is the number of rows holding a matchability-repair
	// candidate (see assign.AugmentEmbedding); 0 when the top-k lists already
	// admit a row-perfect matching.
	AugmentedRows int
	// ComponentHits counts target-graph connected components whose
	// per-component cache artifacts survived the edit (0 without a cache).
	ComponentHits int
	// Warm reports whether the solve was warm-started; false means a cold
	// fallback (drift gate tripped, unusable previous state, or warm solve
	// failure).
	Warm bool
	// RebidRows and Rounds are the warm solve's SparseStats counters (zero
	// for cold solves' RebidRows).
	RebidRows int
	Rounds    int
	// Noop reports an empty edit batch.
	Noop bool
	// RefreshTime covers the embedding/factor recompute and change
	// detection; CandidateTime the incremental top-k update; SolveTime the
	// assignment.
	RefreshTime   time.Duration
	CandidateTime time.Duration
	SolveTime     time.Duration
}

// Session is one incremental alignment: a fixed source graph aligned to an
// evolving target. All methods are safe for concurrent use (serialized
// internally); the embedding/candidate/price state is private to the
// session.
type Session struct {
	mu sync.Mutex
	a  algo.Aligner
	ea algo.EmbeddingAligner
	fa algo.FactorAligner
	// ie/ifa are the aligner's incremental refresh capabilities when it has
	// them (algo.IncrementalEmbedder / algo.IncrementalFactorer); nil falls
	// back to full recompute + row diff on every apply.
	ie   algo.IncrementalEmbedder
	ifa  algo.IncrementalFactorer
	opts Options
	reg  *obsv.Registry

	src, dst *graph.Graph
	emb      *assign.Embedding
	fac      *assign.FactorEmbedding
	cands    *assign.Candidates
	// solve is the solver-facing candidate set: the base lists made
	// row-saturating by assign.Augment* so the auction never has to refuse
	// the instance (low-rank similarities routinely violate Hall's condition
	// and would otherwise force the dense-JV fallback on every apply, which
	// leaves no auction state to warm-start from). augCol records each row's
	// added column (-1 none; nil when the base was already matchable).
	solve *assign.Candidates
	// augCol records each row's repair column; augSeed is the base-graph
	// matching the repair grew from, fed back as the next apply's seed so the
	// unmatched set stays stable across small edits.
	augCol  []int
	augSeed []int
	mapping []int
	state   assign.AuctionState
	// warmable is false when the last solve left no usable auction state
	// (dense-JV fallback); the next Apply then cold-solves regardless of
	// drift.
	warmable bool
	applies  int
}

// ErrNotIncremental reports an aligner exposing neither embeddings nor
// explicit factors — the incremental pipeline has nothing to update
// per-row for dense-only methods.
var ErrNotIncremental = errors.New("incremental: aligner exposes neither embeddings nor factors")

// NewSession cold-aligns src to dst with a and returns a session warm for
// subsequent Apply calls. The aligner must implement algo.EmbeddingAligner
// or algo.FactorAligner (the same precedence as the sparse pipeline:
// embeddings win when both are available) and must not be shared with
// concurrent users.
func NewSession(ctx context.Context, a algo.Aligner, src, dst *graph.Graph, opts Options) (*Session, error) {
	if opts.TopK <= 0 {
		return nil, fmt.Errorf("incremental: TopK must be positive, got %d", opts.TopK)
	}
	if opts.DriftThreshold <= 0 {
		opts.DriftThreshold = 0.5
	}
	reg := opts.Registry
	if reg == nil {
		reg = opts.Tracer.Registry()
	}
	algo.ApplyCache(a, opts.Cache)
	s := &Session{a: a, opts: opts, reg: reg, src: src, dst: dst}
	s.ea, _ = a.(algo.EmbeddingAligner)
	if s.ea != nil {
		s.ie, _ = a.(algo.IncrementalEmbedder)
	} else {
		s.fa, _ = a.(algo.FactorAligner)
		if s.fa == nil {
			return nil, ErrNotIncremental
		}
		s.ifa, _ = a.(algo.IncrementalFactorer)
	}
	if err := s.refresh(ctx, dst); err != nil {
		return nil, err
	}
	if s.emb != nil {
		s.cands = assign.TopKEmbedding(s.emb, opts.TopK, opts.Workers)
	} else {
		s.cands = assign.TopKFactor(s.fac, opts.TopK, opts.Workers)
	}
	s.augmentCandidates(nil, nil)
	if err := s.coldSolve(); err != nil {
		return nil, err
	}
	s.touchComponents(dst)
	reg.Counter("incr_sessions_total").Add(1)
	return s, nil
}

// Mapping returns a copy of the current alignment (mapping[u] = target node
// aligned to source node u).
func (s *Session) Mapping() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.mapping...)
}

// Target returns the current (post-edits) target graph. Graphs are
// immutable, so the caller may read it freely.
func (s *Session) Target() *graph.Graph {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dst
}

// Source returns the session's fixed source graph.
func (s *Session) Source() *graph.Graph { return s.src }

// Applies returns the number of completed Apply calls.
func (s *Session) Applies() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applies
}

// Apply applies one batch of target-graph edits and re-aligns. With an
// empty batch the refresh reproduces the previous state bitwise (the
// similarity stages are pure functions of the graphs), no candidate row
// goes dirty, the warm solve runs zero bidding rounds, and the mapping is
// byte-identical to the previous one.
func (s *Session) Apply(ctx context.Context, edits []graph.Edit) (ApplyStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := ApplyStats{Edits: len(edits), Noop: len(edits) == 0}
	newDst, err := graph.ApplyEdits(s.dst, edits)
	if err != nil {
		return st, err
	}
	run := s.opts.Tracer.StartRun(s.a.Name(), map[string]any{
		"mode":  "incremental-apply",
		"edits": len(edits),
		"n_dst": newDst.N(),
	})

	sp := run.Phase("refresh")
	t0 := time.Now()
	scope := dirtyScope(s.dst, newDst, edits, s.opts.DirtyHops)
	var changedRows, changedCols []int
	if s.emb != nil {
		changedRows, changedCols, err = s.refreshEmbedding(ctx, newDst, scope)
	} else {
		changedRows, changedCols, err = s.refreshFactors(ctx, newDst, scope)
	}
	st.RefreshTime = time.Since(t0)
	sp.End()
	if err != nil {
		run.Set("err", err.Error())
		run.End()
		return st, fmt.Errorf("incremental refresh: %w", err)
	}
	st.ChangedRows, st.ChangedCols = len(changedRows), len(changedCols)

	sp = run.Phase("candidates")
	t1 := time.Now()
	// With ColTolerance > 0 the caller has already accepted bounded
	// staleness, so the merge-based candidate update (exact values, bounded
	// membership staleness, O(changedCols) per row) replaces the exact update
	// (whose conservative probe degenerates to rescanning most rows once a
	// few hundred columns move). Exact mode keeps the bitwise-exact update.
	var next *assign.Candidates
	var dirty []int
	switch {
	case s.emb != nil && s.opts.ColTolerance > 0:
		next, dirty = assign.MergeTopKEmbedding(s.cands, s.emb, changedRows, changedCols, s.opts.Workers)
	case s.emb != nil:
		next, dirty = assign.UpdateTopKEmbedding(s.cands, s.emb, changedRows, changedCols, s.opts.Workers)
	case s.opts.ColTolerance > 0:
		next, dirty = assign.MergeTopKFactor(s.cands, s.fac, changedRows, changedCols, s.opts.Workers)
	default:
		next, dirty = assign.UpdateTopKFactor(s.cands, s.fac, changedRows, changedCols, s.opts.Workers)
	}
	s.cands = next
	// Re-derive the solver-facing augmented set from the merged lists; rows
	// whose augmented entry moved join the dirty set (their solver-visible
	// bytes changed even when their base list did not).
	dirty = unionAsc(dirty, s.augmentCandidates(changedRows, changedCols))
	st.CandidateTime = time.Since(t1)
	sp.Set("dirty_rows", len(dirty))
	sp.End()
	st.DirtyRows = len(dirty)
	for _, j := range s.augCol {
		if j >= 0 {
			st.AugmentedRows++
		}
	}

	sp = run.Phase("solve")
	t2 := time.Now()
	tryWarm := s.warmable &&
		float64(len(dirty)) <= s.opts.DriftThreshold*float64(next.Rows)
	if tryWarm {
		mapping, state, stats, ok := assign.SolveAuctionWarm(s.solve, s.mapping, s.state, dirty, s.opts.Workers)
		if ok {
			s.mapping, s.state = mapping, state
			st.Warm, st.RebidRows, st.Rounds = true, stats.RebidRows, stats.Rounds
		} else {
			tryWarm = false
		}
	}
	if !tryWarm {
		if err := s.coldSolve(); err != nil {
			sp.End()
			run.Set("err", err.Error())
			run.End()
			return st, err
		}
		s.reg.Counter("incr_cold_fallbacks_total").Add(1)
	}
	st.SolveTime = time.Since(t2)
	sp.Set("warm", st.Warm)
	sp.End()

	s.dst = newDst
	st.ComponentHits = s.touchComponents(newDst)
	s.applies++
	s.reg.Counter("incr_applies_total").Add(1)
	if st.Noop {
		s.reg.Counter("incr_noop_total").Add(1)
	}
	s.reg.Counter("incr_cache_component_hits_total").Add(int64(st.ComponentHits))
	s.reg.Histogram("incr_dirty_rows", obsv.SizeBuckets()).Observe(float64(st.DirtyRows))
	s.reg.Histogram("incr_dirty_cols", obsv.SizeBuckets()).Observe(float64(st.ChangedCols))
	s.reg.Histogram("incr_rebid_rounds", obsv.SizeBuckets()).Observe(float64(st.Rounds))
	s.reg.Histogram("incr_augmented_rows", obsv.SizeBuckets()).Observe(float64(st.AugmentedRows))
	run.End()
	return st, nil
}

// refresh recomputes the similarity stage for the given target and installs
// it wholesale (the initial cold start). Refresh-capable aligners are primed
// through their refresher so the first Apply already finds captured state;
// a refresher's first call runs the same full pipeline, bitwise.
func (s *Session) refresh(ctx context.Context, dst *graph.Graph) error {
	if s.ea != nil {
		var emb *assign.Embedding
		var err error
		if s.ie != nil {
			emb, err = s.ie.RefreshEmbeddingsCtx(ctx, s.src, dst, nil)
		} else {
			emb, err = s.ea.EmbeddingsCtx(ctx, s.src, dst)
		}
		if err != nil {
			return fmt.Errorf("embeddings: %w", err)
		}
		s.emb = emb
		return nil
	}
	var fac *assign.FactorEmbedding
	var err error
	if s.ifa != nil {
		fac, err = s.ifa.RefreshFactorsCtx(ctx, s.src, dst)
	} else {
		fac, err = s.fa.FactorsCtx(ctx, s.src, dst)
	}
	if err != nil {
		return fmt.Errorf("factors: %w", err)
	}
	s.fac = fac
	return nil
}

// refreshEmbedding recomputes embeddings for the edited target and patches
// the rows that moved beyond tolerance into the session's effective
// embedding, returning the changed source rows and target columns. Rows
// within tolerance keep their previous vectors so the effective embedding
// stays bitwise-consistent with the retained candidate lists — the contract
// assign.UpdateTopKEmbedding requires — and so staleness is measured
// against each row's last refresh, not the last apply.
func (s *Session) refreshEmbedding(ctx context.Context, dst *graph.Graph, scope []bool) (changedRows, changedCols []int, err error) {
	// A refresh-capable aligner recomputes only inside the dirty scope and
	// returns everything else bitwise from its captured state — the dominant
	// per-apply saving; plain aligners pay a full recompute and rely on the
	// diff below.
	var fresh *assign.Embedding
	if s.ie != nil {
		fresh, err = s.ie.RefreshEmbeddingsCtx(ctx, s.src, dst, scope)
	} else {
		fresh, err = s.ea.EmbeddingsCtx(ctx, s.src, dst)
	}
	if err != nil {
		return nil, nil, err
	}
	if fresh.Src.Cols != s.emb.Src.Cols || fresh.Src.Rows != s.emb.Src.Rows ||
		fresh.Dst.Rows != s.emb.Dst.Rows {
		// Dimensionality drift (e.g. a rank change): replace wholesale and
		// mark everything changed — UpdateTopKEmbedding then takes its bulk
		// shortcut.
		s.emb = fresh
		return allIndices(fresh.Src.Rows), allIndices(fresh.Dst.Rows), nil
	}
	changedRows = changedDenseRows(s.emb.Src, fresh.Src, s.opts.ColTolerance)
	changedCols = inScope(changedDenseRows(s.emb.Dst, fresh.Dst, s.opts.ColTolerance), scope)
	for _, i := range changedRows {
		copy(s.emb.Src.Row(i), fresh.Src.Row(i))
	}
	for _, j := range changedCols {
		copy(s.emb.Dst.Row(j), fresh.Dst.Row(j))
	}
	return changedRows, changedCols, nil
}

// refreshFactors is refreshEmbedding for factored similarities. A row
// counts as changed when its cross-term coefficient vector (Us[0][i], …,
// Us[r-1][i]) moved beyond tolerance. Any change to the term weights or the
// rank rescales every score, so those degrade to a full refresh.
func (s *Session) refreshFactors(ctx context.Context, dst *graph.Graph, scope []bool) (changedRows, changedCols []int, err error) {
	var fresh *assign.FactorEmbedding
	if s.ifa != nil {
		fresh, err = s.ifa.RefreshFactorsCtx(ctx, s.src, dst)
	} else {
		fresh, err = s.fa.FactorsCtx(ctx, s.src, dst)
	}
	if err != nil {
		return nil, nil, err
	}
	if fresh.Rank() != s.fac.Rank() || fresh.Rows() != s.fac.Rows() ||
		fresh.Cols() != s.fac.Cols() || !sameWeights(fresh.Weights, s.fac.Weights) {
		s.fac = fresh
		return allIndices(fresh.Rows()), allIndices(fresh.Cols()), nil
	}
	changedRows = changedFactorRows(s.fac.Us, fresh.Us, s.opts.ColTolerance)
	changedCols = inScope(changedFactorRows(s.fac.Vs, fresh.Vs, s.opts.ColTolerance), scope)
	for t := range fresh.Us {
		for _, i := range changedRows {
			s.fac.Us[t][i] = fresh.Us[t][i]
		}
		for _, j := range changedCols {
			s.fac.Vs[t][j] = fresh.Vs[t][j]
		}
	}
	return changedRows, changedCols, nil
}

// augmentCandidates rebuilds the solver-facing candidate set from the current
// base lists (see assign.AugmentEmbedding) and returns, ascending, the rows
// whose augmented entry changed since the previous solve — they must join the
// warm solve's dirty set. changedRows/changedCols are this apply's refresh
// deltas: an augmented entry's value is a pure function of its row's source
// vector and its column's target vector, so it can only move when one of
// those did, or when the repair picked a different column.
func (s *Session) augmentCandidates(changedRows, changedCols []int) []int {
	prev := s.augCol
	if s.emb != nil {
		s.solve, s.augCol, s.augSeed = assign.AugmentEmbedding(s.cands, s.emb, s.augSeed, prev)
	} else {
		s.solve, s.augCol, s.augSeed = assign.AugmentFactor(s.cands, s.fac, s.augSeed, prev)
	}
	if prev == nil && s.augCol == nil {
		return nil
	}
	cr := make(map[int]bool, len(changedRows))
	for _, i := range changedRows {
		cr[i] = true
	}
	cc := make(map[int]bool, len(changedCols))
	for _, j := range changedCols {
		cc[j] = true
	}
	var out []int
	for i := 0; i < s.cands.Rows; i++ {
		pc, nc := -1, -1
		if prev != nil {
			pc = prev[i]
		}
		if s.augCol != nil {
			nc = s.augCol[i]
		}
		if pc != nc || (nc >= 0 && (cc[nc] || cr[i])) {
			out = append(out, i)
		}
	}
	return out
}

// unionAsc merges two ascending index lists without duplicates.
func unionAsc(a, b []int) []int {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// coldSolve runs the ε-scaling auction from scratch over the current
// (augmented) candidates, capturing its price vector for the next warm
// start; a tripped round cap degrades to the dense JV fallback, which yields
// no reusable auction state.
func (s *Session) coldSolve() error {
	c := s.solve
	if c == nil {
		c = s.cands
	}
	mapping, state, _, ok := assign.SolveAuctionState(c, s.opts.Workers)
	if ok {
		s.mapping, s.state, s.warmable = mapping, state, true
		return nil
	}
	var dense func() []int
	if s.emb != nil {
		dense = func() []int { return assign.SolveJV(s.emb.Similarity()) }
	} else {
		dense = func() []int { return assign.SolveJV(s.fac.Similarity()) }
	}
	s.mapping, s.state, s.warmable = dense(), assign.AuctionState{}, false
	return nil
}

// touchComponents counts the target components whose per-component degree
// artifact is already cached (survived the edit), then (re)materializes the
// artifacts for the next apply. Returns 0 without a cache.
func (s *Session) touchComponents(dst *graph.Graph) int {
	c := s.opts.Cache
	if c == nil {
		return 0
	}
	view := cache.Components(c, dst)
	hits := 0
	for _, key := range view.Keys {
		if c.Has(key + "/degrees") {
			hits++
		}
	}
	cache.DegreesDelta(c, dst)
	return hits
}

// dirtyScope returns the Options.DirtyHops target-side node filter: true
// for nodes within hops of an edited endpoint, walking both the pre- and
// post-edit adjacency (a removed edge's far side is only reachable through
// the old graph). nil means unrestricted (hops <= 0 or an empty batch).
func dirtyScope(before, after *graph.Graph, edits []graph.Edit, hops int) []bool {
	if hops <= 0 || len(edits) == 0 {
		return nil
	}
	allowed := make([]bool, after.N())
	frontier := graph.Touched(edits)
	for _, u := range frontier {
		if u >= 0 && u < len(allowed) {
			allowed[u] = true
		}
	}
	for hop := 0; hop < hops; hop++ {
		var next []int
		for _, u := range frontier {
			for _, g := range [2]*graph.Graph{before, after} {
				if u < 0 || u >= g.N() {
					continue
				}
				for _, v := range g.Neighbors(u) {
					if !allowed[v] {
						allowed[v] = true
						next = append(next, v)
					}
				}
			}
		}
		frontier = next
	}
	return allowed
}

// inScope filters indices down to those the scope allows (nil allows all).
func inScope(indices []int, scope []bool) []int {
	if scope == nil {
		return indices
	}
	out := indices[:0]
	for _, i := range indices {
		if scope[i] {
			out = append(out, i)
		}
	}
	return out
}

// changedDenseRows returns the rows of fresh whose vectors moved beyond tol
// relative to old (see Options.ColTolerance), ascending.
func changedDenseRows(old, fresh *matrix.Dense, tol float64) []int {
	var changed []int
	for i := 0; i < old.Rows; i++ {
		if rowChanged(old.Row(i), fresh.Row(i), tol) {
			changed = append(changed, i)
		}
	}
	return changed
}

// changedFactorRows is changedDenseRows over a factor list's cross-term
// coefficient vectors: position i's vector is (lists[0][i], …,
// lists[r-1][i]).
func changedFactorRows(old, fresh [][]float64, tol float64) []int {
	if len(old) == 0 {
		return nil
	}
	var changed []int
	n := len(old[0])
	ov := make([]float64, len(old))
	fv := make([]float64, len(old))
	for i := 0; i < n; i++ {
		for t := range old {
			ov[t], fv[t] = old[t][i], fresh[t][i]
		}
		if rowChanged(ov, fv, tol) {
			changed = append(changed, i)
		}
	}
	return changed
}

// rowChanged implements the Options.ColTolerance comparison for one vector.
func rowChanged(old, fresh []float64, tol float64) bool {
	if tol < 0 {
		return true
	}
	if tol == 0 {
		for t := range old {
			if old[t] != fresh[t] {
				return true
			}
		}
		return false
	}
	var maxDiff, maxAbs float64
	for t := range old {
		if d := math.Abs(fresh[t] - old[t]); d > maxDiff {
			maxDiff = d
		}
		if a := math.Abs(old[t]); a > maxAbs {
			maxAbs = a
		}
	}
	return maxDiff/(maxAbs+1e-12) > tol
}

// sameWeights compares factor weight vectors bitwise (nil means all-ones,
// distinct from any explicit vector of a different meaning only when
// lengths differ — the rank check upstream handles that).
func sameWeights(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// allIndices returns [0, n).
func allIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
