package incremental

import "graphalign/internal/obsv"

// PreRegisterMetrics creates every incr_* series in reg at zero. The obsv
// registry materializes metrics on first use, so a scraper watching /metrics
// would otherwise not see the incremental counters until the first session
// runs — and rate() over a counter that appears only on its first increment
// misses the initial transition. Long-running processes that may host
// sessions (alignd) call this once at startup.
func PreRegisterMetrics(reg *obsv.Registry) {
	for _, name := range []string{
		"incr_sessions_total",
		"incr_applies_total",
		"incr_noop_total",
		"incr_cold_fallbacks_total",
		"incr_cache_component_hits_total",
	} {
		reg.Counter(name)
	}
	for _, name := range []string{
		"incr_dirty_rows",
		"incr_dirty_cols",
		"incr_rebid_rounds",
		"incr_augmented_rows",
	} {
		reg.Histogram(name, obsv.SizeBuckets())
	}
}
