package linalg

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"graphalign/internal/matrix"
)

func randomSymmetric(n int, seed int64) *matrix.Dense {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2, 1], [1, 2]] has eigenvalues 1 and 3.
	a := matrix.DenseFromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-1) > 1e-10 || math.Abs(vals[1]-3) > 1e-10 {
		t.Fatalf("vals = %v, want [1 3]", vals)
	}
	// Eigenvector of 3 is (1,1)/sqrt(2) up to sign.
	if math.Abs(math.Abs(vecs.At(0, 1))-1/math.Sqrt2) > 1e-10 {
		t.Errorf("vec = %v", vecs.Data)
	}
}

func TestSymEigenDiagonal(t *testing.T) {
	a := matrix.DenseFromRows([][]float64{{5, 0, 0}, {0, -2, 0}, {0, 0, 1}})
	vals, _, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-2, 1, 5}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
}

func TestSymEigenNonSquare(t *testing.T) {
	if _, _, err := SymEigen(matrix.NewDense(2, 3)); err == nil {
		t.Error("non-square accepted")
	}
}

// residual returns max_i ||A v_i - lambda_i v_i||_inf.
func residual(a *matrix.Dense, vals []float64, vecs *matrix.Dense) float64 {
	n := a.Rows
	worst := 0.0
	for k := 0; k < len(vals); k++ {
		v := make([]float64, n)
		for i := 0; i < n; i++ {
			v[i] = vecs.At(i, k)
		}
		av := a.MulVec(v)
		for i := 0; i < n; i++ {
			if r := math.Abs(av[i] - vals[k]*v[i]); r > worst {
				worst = r
			}
		}
	}
	return worst
}

func TestPropertySymEigenResidualAndOrthogonality(t *testing.T) {
	f := func(seed int64) bool {
		n := 12
		a := randomSymmetric(n, seed)
		vals, vecs, err := SymEigen(a)
		if err != nil {
			return false
		}
		if !sort.Float64sAreSorted(vals) {
			return false
		}
		if residual(a, vals, vecs) > 1e-8 {
			return false
		}
		// Orthogonality: VᵀV = I.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var dot float64
				for k := 0; k < n; k++ {
					dot += vecs.At(k, i) * vecs.At(k, j)
				}
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(dot-want) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPropertyEigenvalueSumEqualsTrace(t *testing.T) {
	f := func(seed int64) bool {
		a := randomSymmetric(10, seed)
		vals, _, err := SymEigen(a)
		if err != nil {
			return false
		}
		var sum, trace float64
		for _, v := range vals {
			sum += v
		}
		for i := 0; i < 10; i++ {
			trace += a.At(i, i)
		}
		return math.Abs(sum-trace) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
