package linalg

import (
	"errors"
	"math"

	"graphalign/internal/matrix"
)

// Inverse returns the inverse of a square matrix computed by Gaussian
// elimination with partial pivoting. It errors on singular input.
func Inverse(a *matrix.Dense) (*matrix.Dense, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, errors.New("linalg: Inverse requires a square matrix")
	}
	// Augmented [A | I] elimination.
	work := a.Clone()
	inv := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		inv.Set(i, i, 1)
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		maxAbs := math.Abs(work.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(work.At(r, col)); v > maxAbs {
				maxAbs = v
				pivot = r
			}
		}
		if maxAbs < 1e-300 {
			return nil, errors.New("linalg: singular matrix")
		}
		if pivot != col {
			swapRows(work, pivot, col)
			swapRows(inv, pivot, col)
		}
		// Normalize pivot row.
		p := work.At(col, col)
		scaleRow(work, col, 1/p)
		scaleRow(inv, col, 1/p)
		// Eliminate.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := work.At(r, col)
			if f == 0 {
				continue
			}
			axpyRow(work, r, col, -f)
			axpyRow(inv, r, col, -f)
		}
	}
	return inv, nil
}

func swapRows(m *matrix.Dense, a, b int) {
	ra, rb := m.Row(a), m.Row(b)
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

func scaleRow(m *matrix.Dense, r int, f float64) {
	row := m.Row(r)
	for i := range row {
		row[i] *= f
	}
}

func axpyRow(m *matrix.Dense, dst, src int, f float64) {
	rd, rs := m.Row(dst), m.Row(src)
	for i := range rd {
		rd[i] += f * rs[i]
	}
}

// PolarOrthogonal returns the (partial-isometry) polar factor of a square
// matrix — the solution of the orthogonal Procrustes problem max <Q, M> —
// computed as M (MᵀM)^(-1/2) via the symmetric eigendecomposition of MᵀM.
// Directions in M's (numerical) null space map to zero rather than an
// arbitrary rotation, which is exactly what embedding-alignment callers
// want: unreliable directions carry no signal either way.
func PolarOrthogonal(m *matrix.Dense) *matrix.Dense {
	n := m.Rows
	if m.Cols != n {
		panic("linalg: PolarOrthogonal requires a square matrix")
	}
	mtm := matrix.Mul(m.T(), m) // symmetric PSD n x n
	vals, vecs, err := SymEigen(mtm)
	if err != nil {
		// Fall back to the Jacobi SVD polar factor.
		u, _, v := SVDAny(m)
		return matrix.MulABT(u, v)
	}
	// (MᵀM)^(-1/2) = Q diag(1/sqrt(λ)) Qᵀ, with tiny eigenvalues dropped.
	maxVal := 0.0
	for _, v := range vals {
		if v > maxVal {
			maxVal = v
		}
	}
	cutoff := 1e-12 * maxVal
	scaled := matrix.NewDense(n, n) // Q diag(1/sqrt(λ))
	for j := 0; j < n; j++ {
		f := 0.0
		if vals[j] > cutoff && vals[j] > 0 {
			f = 1 / math.Sqrt(vals[j])
		}
		for i := 0; i < n; i++ {
			scaled.Set(i, j, vecs.At(i, j)*f)
		}
	}
	invSqrt := matrix.MulABT(scaled, vecs) // scaled Qᵀ
	return matrix.Mul(m, invSqrt)
}
