package linalg

import (
	"context"
	"math/rand"

	"graphalign/internal/matrix"
)

// TruncatedSVD computes an approximate rank-k SVD of a (m x n) with
// randomized subspace iteration (Halko, Martinsson, Tropp): a random
// test matrix is pushed through (A Aᵀ)^q A to capture the dominant
// subspace, and the small projected problem is solved exactly with the
// Jacobi SVD. For the strongly decaying spectra the alignment priors have,
// q = 2 already gives near-exact leading triplets at O(mnk) cost instead of
// the O(mn^2)-per-sweep full decomposition.
func TruncatedSVD(a *matrix.Dense, k, iters int, rng *rand.Rand) (u *matrix.Dense, s []float64, v *matrix.Dense) {
	u, s, v, _ = TruncatedSVDCtx(context.Background(), a, k, iters, rng)
	return u, s, v
}

// TruncatedSVDCtx is TruncatedSVD with cooperative cancellation checked once
// per subspace iteration; it returns ctx.Err() when interrupted.
func TruncatedSVDCtx(ctx context.Context, a *matrix.Dense, k, iters int, rng *rand.Rand) (u *matrix.Dense, s []float64, v *matrix.Dense, err error) {
	m, n := a.Rows, a.Cols
	if k > m {
		k = m
	}
	if k > n {
		k = n
	}
	if k <= 0 {
		return matrix.NewDense(m, 0), nil, matrix.NewDense(n, 0), nil
	}
	const oversample = 6
	p := k + oversample
	if p > n {
		p = n
	}
	if p > m {
		p = m
	}
	// Y = A * Omega, orthonormalized.
	omega := matrix.NewDense(n, p)
	for i := range omega.Data {
		omega.Data[i] = rng.NormFloat64()
	}
	y := matrix.Mul(a, omega) // m x p
	orthonormalizeColumns(y)
	if iters < 1 {
		iters = 1
	}
	for q := 0; q < iters; q++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, nil, err
		}
		z := matrix.Mul(a.T(), y) // n x p
		orthonormalizeColumns(z)
		y = matrix.Mul(a, z) // m x p
		orthonormalizeColumns(y)
	}
	// Project: B = Yᵀ A (p x n); exact SVD of the small factor.
	b := matrix.Mul(y.T(), a)
	ub, sb, vb, err := SVDAnyCtx(ctx, b)
	if err != nil {
		return nil, nil, nil, err
	}
	// Lift U back: U = Y * Ub.
	uFull := matrix.Mul(y, ub)
	// Trim to k.
	u = matrix.NewDense(m, k)
	v = matrix.NewDense(n, k)
	s = make([]float64, k)
	copy(s, sb[:k])
	for i := 0; i < m; i++ {
		copy(u.Row(i), uFull.Row(i)[:k])
	}
	for i := 0; i < n; i++ {
		copy(v.Row(i), vb.Row(i)[:k])
	}
	return u, s, v, nil
}

// orthonormalizeColumns runs modified Gram–Schmidt on the columns of y in
// place; (near-)zero columns are replaced with zeros.
func orthonormalizeColumns(y *matrix.Dense) {
	m, p := y.Rows, y.Cols
	col := make([]float64, m)
	for j := 0; j < p; j++ {
		for i := 0; i < m; i++ {
			col[i] = y.At(i, j)
		}
		for prev := 0; prev < j; prev++ {
			var dot float64
			for i := 0; i < m; i++ {
				dot += col[i] * y.At(i, prev)
			}
			if dot == 0 {
				continue
			}
			for i := 0; i < m; i++ {
				col[i] -= dot * y.At(i, prev)
			}
		}
		nrm := matrix.Norm2(col)
		if nrm < 1e-12 {
			for i := 0; i < m; i++ {
				y.Set(i, j, 0)
			}
			continue
		}
		for i := 0; i < m; i++ {
			y.Set(i, j, col[i]/nrm)
		}
	}
}
