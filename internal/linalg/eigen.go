// Package linalg implements the numerical linear algebra the alignment
// algorithms need: full symmetric eigendecomposition, Lanczos extremal
// eigenpairs for sparse operators, one-sided Jacobi SVD, pseudo-inverse, and
// power iteration. Everything is written against float64 slices and the
// matrix package; no external BLAS/LAPACK.
package linalg

import (
	"context"
	"fmt"
	"math"
	"sort"

	"graphalign/internal/matrix"
)

// SymEigen computes the full eigendecomposition of the symmetric matrix a
// (only its lower triangle is read). It returns the eigenvalues in ascending
// order and the matrix of corresponding eigenvectors stored column-wise:
// vecs.At(i, k) is component i of eigenvector k.
//
// The implementation is the classic Householder tridiagonalization followed
// by the implicit-shift QL algorithm (Numerical Recipes tred2/tqli).
func SymEigen(a *matrix.Dense) (vals []float64, vecs *matrix.Dense, err error) {
	return SymEigenCtx(context.Background(), a)
}

// SymEigenCtx is SymEigen with cooperative cancellation checked once per
// eigenvalue in the QL phase; it returns ctx.Err() when interrupted.
func SymEigenCtx(ctx context.Context, a *matrix.Dense) (vals []float64, vecs *matrix.Dense, err error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("linalg: SymEigen requires square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	z := a.Clone() // will be overwritten with eigenvectors
	d := make([]float64, n)
	e := make([]float64, n)
	tred2(z, d, e)
	if err := tqli(ctx, d, e, z); err != nil {
		return nil, nil, err
	}
	// Sort ascending by eigenvalue, permuting columns of z.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return d[idx[i]] < d[idx[j]] })
	vals = make([]float64, n)
	vecs = matrix.NewDense(n, n)
	for k, src := range idx {
		vals[k] = d[src]
		for i := 0; i < n; i++ {
			vecs.Set(i, k, z.At(i, src))
		}
	}
	return vals, vecs, nil
}

// TruncateEigenpairs copies the k leading eigenpairs out of a full
// decomposition (vals ascending, vecs column-wise, as SymEigen returns
// them) into freshly allocated storage, so a truncated spectrum can be
// retained — e.g. in the artifact cache — without pinning the full n x n
// eigenvector matrix. k is clamped to len(vals).
func TruncateEigenpairs(vals []float64, vecs *matrix.Dense, k int) ([]float64, *matrix.Dense) {
	if k > len(vals) {
		k = len(vals)
	}
	if k < 0 {
		k = 0
	}
	outV := make([]float64, k)
	copy(outV, vals[:k])
	outM := matrix.NewDense(vecs.Rows, k)
	for i := 0; i < vecs.Rows; i++ {
		copy(outM.Row(i), vecs.Row(i)[:k])
	}
	return outV, outM
}

// tred2 reduces the symmetric matrix stored in z to tridiagonal form by
// Householder transformations, accumulating the orthogonal transform in z.
// On exit, d holds the diagonal and e the subdiagonal (e[0] unused).
func tred2(z *matrix.Dense, d, e []float64) {
	n := z.Rows
	for i := n - 1; i >= 1; i-- {
		l := i - 1
		h := 0.0
		scale := 0.0
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(z.At(i, k))
			}
			if scale == 0 {
				e[i] = z.At(i, l)
			} else {
				for k := 0; k <= l; k++ {
					v := z.At(i, k) / scale
					z.Set(i, k, v)
					h += v * v
				}
				f := z.At(i, l)
				g := math.Sqrt(h)
				if f >= 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				z.Set(i, l, f-g)
				f = 0.0
				for j := 0; j <= l; j++ {
					z.Set(j, i, z.At(i, j)/h)
					g = 0.0
					for k := 0; k <= j; k++ {
						g += z.At(j, k) * z.At(i, k)
					}
					for k := j + 1; k <= l; k++ {
						g += z.At(k, j) * z.At(i, k)
					}
					e[j] = g / h
					f += e[j] * z.At(i, j)
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					f = z.At(i, j)
					g = e[j] - hh*f
					e[j] = g
					for k := 0; k <= j; k++ {
						z.Add(j, k, -(f*e[k] + g*z.At(i, k)))
					}
				}
			}
		} else {
			e[i] = z.At(i, l)
		}
		d[i] = h
	}
	d[0] = 0.0
	e[0] = 0.0
	for i := 0; i < n; i++ {
		l := i - 1
		if d[i] != 0 {
			for j := 0; j <= l; j++ {
				g := 0.0
				for k := 0; k <= l; k++ {
					g += z.At(i, k) * z.At(k, j)
				}
				for k := 0; k <= l; k++ {
					z.Add(k, j, -g*z.At(k, i))
				}
			}
		}
		d[i] = z.At(i, i)
		z.Set(i, i, 1.0)
		for j := 0; j <= l; j++ {
			z.Set(j, i, 0.0)
			z.Set(i, j, 0.0)
		}
	}
}

// tqli diagonalizes the tridiagonal matrix (d, e) with the implicit-shift QL
// algorithm, accumulating rotations into z columns. ctx is checked once per
// eigenvalue — each QL deflation is O(n²), so the check adds no measurable
// cost while keeping cancellation latency bounded.
func tqli(ctx context.Context, d, e []float64, z *matrix.Dense) error {
	n := len(d)
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0.0
	for l := 0; l < n; l++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		iter := 0
		for {
			var m int
			for m = l; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m])+dd == dd {
					break
				}
			}
			if m == l {
				break
			}
			iter++
			if iter == 50 {
				return fmt.Errorf("linalg: tqli failed to converge at eigenvalue %d", l)
			}
			g := (d[l+1] - d[l]) / (2.0 * e[l])
			r := math.Hypot(g, 1.0)
			sg := r
			if g < 0 {
				sg = -r
			}
			g = d[m] - d[l] + e[l]/(g+sg)
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0.0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2.0*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				for k := 0; k < n; k++ {
					f = z.At(k, i+1)
					z.Set(k, i+1, s*z.At(k, i)+c*f)
					z.Set(k, i, c*z.At(k, i)-s*f)
				}
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0.0
		}
	}
	return nil
}
