package linalg

import (
	"context"
	"math"
	"sort"

	"graphalign/internal/matrix"
)

// SVD computes the thin singular value decomposition a = U diag(s) Vᵀ of an
// m x n matrix with m >= 0, n >= 0, using one-sided Jacobi rotations on the
// columns. Singular values are returned in descending order; U is m x n and
// V is n x n (thin form; if m < n the caller should transpose first — the
// helper SVDAny handles that).
func SVD(a *matrix.Dense) (u *matrix.Dense, s []float64, v *matrix.Dense) {
	u, s, v, _ = SVDCtx(context.Background(), a)
	return u, s, v
}

// SVDCtx is SVD with cooperative cancellation checked once per Jacobi sweep;
// it returns ctx.Err() and nil factors when interrupted.
func SVDCtx(ctx context.Context, a *matrix.Dense) (u *matrix.Dense, s []float64, v *matrix.Dense, err error) {
	m, n := a.Rows, a.Cols
	u = a.Clone()
	v = matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	// One-sided Jacobi: repeatedly orthogonalize pairs of columns of u,
	// accumulating rotations in v.
	const maxSweeps = 60
	eps := 1e-14
	for sweep := 0; sweep < maxSweeps; sweep++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, nil, err
		}
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				var alpha, beta, gamma float64
				for i := 0; i < m; i++ {
					up := u.At(i, p)
					uq := u.At(i, q)
					alpha += up * up
					beta += uq * uq
					gamma += up * uq
				}
				if math.Abs(gamma) <= eps*math.Sqrt(alpha*beta) {
					continue
				}
				off += gamma * gamma
				zeta := (beta - alpha) / (2 * gamma)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				sn := c * t
				for i := 0; i < m; i++ {
					up := u.At(i, p)
					uq := u.At(i, q)
					u.Set(i, p, c*up-sn*uq)
					u.Set(i, q, sn*up+c*uq)
				}
				for i := 0; i < n; i++ {
					vp := v.At(i, p)
					vq := v.At(i, q)
					v.Set(i, p, c*vp-sn*vq)
					v.Set(i, q, sn*vp+c*vq)
				}
			}
		}
		if off < eps {
			break
		}
	}
	// Column norms of u are the singular values.
	s = make([]float64, n)
	for j := 0; j < n; j++ {
		var nrm float64
		for i := 0; i < m; i++ {
			nrm += u.At(i, j) * u.At(i, j)
		}
		nrm = math.Sqrt(nrm)
		s[j] = nrm
		if nrm > 0 {
			for i := 0; i < m; i++ {
				u.Set(i, j, u.At(i, j)/nrm)
			}
		}
	}
	// Sort descending by singular value (selection sort on columns).
	for j := 0; j < n; j++ {
		best := j
		for k := j + 1; k < n; k++ {
			if s[k] > s[best] {
				best = k
			}
		}
		if best != j {
			s[j], s[best] = s[best], s[j]
			for i := 0; i < m; i++ {
				uj, ub := u.At(i, j), u.At(i, best)
				u.Set(i, j, ub)
				u.Set(i, best, uj)
			}
			for i := 0; i < n; i++ {
				vj, vb := v.At(i, j), v.At(i, best)
				v.Set(i, j, vb)
				v.Set(i, best, vj)
			}
		}
	}
	return u, s, v, nil
}

// SVDAny computes the thin SVD for any shape, transposing internally when
// m < n so the one-sided Jacobi always works on tall matrices. U is m x r,
// V is n x r with r = min(m, n).
func SVDAny(a *matrix.Dense) (u *matrix.Dense, s []float64, v *matrix.Dense) {
	u, s, v, _ = SVDAnyCtx(context.Background(), a)
	return u, s, v
}

// SVDAnyCtx is SVDAny with cooperative cancellation (see SVDCtx).
func SVDAnyCtx(ctx context.Context, a *matrix.Dense) (u *matrix.Dense, s []float64, v *matrix.Dense, err error) {
	if a.Rows >= a.Cols {
		return SVDCtx(ctx, a)
	}
	vt, s, ut, err := SVDCtx(ctx, a.T())
	if err != nil {
		return nil, nil, nil, err
	}
	// a = (aᵀ)ᵀ = (vt s utᵀ)ᵀ = ut s vtᵀ
	return ut, s, vt, nil
}

// PseudoInverse returns the Moore–Penrose pseudo-inverse of a, computed from
// the SVD; singular values below rcond * s_max are treated as zero.
func PseudoInverse(a *matrix.Dense, rcond float64) *matrix.Dense {
	p, _ := PseudoInverseCtx(context.Background(), a, rcond)
	return p
}

// PseudoInverseCtx is PseudoInverse with cooperative cancellation inherited
// from the underlying Jacobi SVD.
func PseudoInverseCtx(ctx context.Context, a *matrix.Dense, rcond float64) (*matrix.Dense, error) {
	u, s, v, err := SVDAnyCtx(ctx, a)
	if err != nil {
		return nil, err
	}
	r := len(s)
	smax := 0.0
	for _, sv := range s {
		if sv > smax {
			smax = sv
		}
	}
	cutoff := rcond * smax
	// pinv = V diag(1/s) Uᵀ
	scaled := matrix.NewDense(v.Rows, r)
	for j := 0; j < r; j++ {
		inv := 0.0
		if s[j] > cutoff && s[j] > 0 {
			inv = 1 / s[j]
		}
		for i := 0; i < v.Rows; i++ {
			scaled.Set(i, j, v.At(i, j)*inv)
		}
	}
	return matrix.MulABT(scaled, u), nil // scaled * uᵀ
}

// TopKSVDSym returns the top-k singular triplets of a symmetric matrix by
// way of its eigendecomposition (s_i = |λ_i|, u_i = q_i, v_i = sign(λ_i)
// q_i). Far cheaper than Jacobi SVD for the dense symmetric proximity
// matrices CONE factorizes.
func TopKSVDSym(a *matrix.Dense, k int) (u *matrix.Dense, s []float64, v *matrix.Dense, err error) {
	return TopKSVDSymCtx(context.Background(), a, k)
}

// TopKSVDSymCtx is TopKSVDSym with cooperative cancellation inherited from
// the underlying eigendecomposition.
func TopKSVDSymCtx(ctx context.Context, a *matrix.Dense, k int) (u *matrix.Dense, s []float64, v *matrix.Dense, err error) {
	vals, vecs, err := SymEigenCtx(ctx, a)
	if err != nil {
		return nil, nil, nil, err
	}
	n := len(vals)
	if k > n {
		k = n
	}
	// Order indices by |eigenvalue| descending.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return math.Abs(vals[idx[a]]) > math.Abs(vals[idx[b]])
	})
	u = matrix.NewDense(n, k)
	v = matrix.NewDense(n, k)
	s = make([]float64, k)
	for c := 0; c < k; c++ {
		j := idx[c]
		s[c] = math.Abs(vals[j])
		sign := 1.0
		if vals[j] < 0 {
			sign = -1
		}
		for i := 0; i < n; i++ {
			q := vecs.At(i, j)
			u.Set(i, c, q)
			v.Set(i, c, sign*q)
		}
	}
	return u, s, v, nil
}

// TopKSVD returns the leading k columns of U, the top-k singular values and
// the leading k columns of V. k is clamped to min(m, n).
func TopKSVD(a *matrix.Dense, k int) (u *matrix.Dense, s []float64, v *matrix.Dense) {
	fu, fs, fv := SVDAny(a)
	r := len(fs)
	if k > r {
		k = r
	}
	u = matrix.NewDense(fu.Rows, k)
	v = matrix.NewDense(fv.Rows, k)
	s = make([]float64, k)
	copy(s, fs[:k])
	for i := 0; i < fu.Rows; i++ {
		for j := 0; j < k; j++ {
			u.Set(i, j, fu.At(i, j))
		}
	}
	for i := 0; i < fv.Rows; i++ {
		for j := 0; j < k; j++ {
			v.Set(i, j, fv.At(i, j))
		}
	}
	return u, s, v
}
