package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"graphalign/internal/matrix"
)

func TestTruncatedSVDMatchesFullOnDecayingSpectrum(t *testing.T) {
	// Build a matrix with a strongly decaying spectrum: A = sum_i s_i u v.
	rng := rand.New(rand.NewSource(1))
	m, n := 40, 30
	a := matrix.NewDense(m, n)
	for i := 0; i < 5; i++ {
		u := make([]float64, m)
		v := make([]float64, n)
		for j := range u {
			u[j] = rng.NormFloat64()
		}
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		matrix.Normalize(u)
		matrix.Normalize(v)
		a.AddOuterScaled(u, v, math.Pow(0.3, float64(i))*10)
	}
	uT, sT, vT := TruncatedSVD(a, 3, 3, rng)
	_, sF, _ := SVDAny(a)
	for i := 0; i < 3; i++ {
		if math.Abs(sT[i]-sF[i]) > 1e-6*(1+sF[i]) {
			t.Errorf("singular value %d: truncated %v vs full %v", i, sT[i], sF[i])
		}
	}
	// Rank-3 reconstruction error should match the optimal (s_4 scale).
	recon := matrix.NewDense(m, n)
	for c := 0; c < 3; c++ {
		uc := make([]float64, m)
		vc := make([]float64, n)
		for i := 0; i < m; i++ {
			uc[i] = uT.At(i, c)
		}
		for i := 0; i < n; i++ {
			vc[i] = vT.At(i, c)
		}
		recon.AddOuterScaled(uc, vc, sT[c])
	}
	var errF float64
	for i := range a.Data {
		d := a.Data[i] - recon.Data[i]
		errF += d * d
	}
	errF = math.Sqrt(errF)
	if errF > sF[3]*2+1e-9 {
		t.Errorf("rank-3 reconstruction error %v exceeds 2x optimal %v", errF, sF[3])
	}
}

func TestTruncatedSVDOrthonormal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMat(20, 15, seed)
		u, _, v := TruncatedSVD(a, 4, 2, rng)
		return columnsOrthonormal(u) && columnsOrthonormal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func columnsOrthonormal(m *matrix.Dense) bool {
	for a := 0; a < m.Cols; a++ {
		for b := a; b < m.Cols; b++ {
			var dot float64
			for i := 0; i < m.Rows; i++ {
				dot += m.At(i, a) * m.At(i, b)
			}
			want := 0.0
			if a == b {
				want = 1
			}
			if math.Abs(dot-want) > 1e-6 {
				return false
			}
		}
	}
	return true
}

func TestTruncatedSVDEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomMat(5, 3, 3)
	// k larger than min dimension clamps.
	_, s, _ := TruncatedSVD(a, 10, 2, rng)
	if len(s) != 3 {
		t.Errorf("k clamp failed: %d values", len(s))
	}
	// k = 0 returns empty factors.
	u, s0, v := TruncatedSVD(a, 0, 2, rng)
	if len(s0) != 0 || u.Cols != 0 || v.Cols != 0 {
		t.Error("k=0 should return empty decomposition")
	}
}
