package linalg

import (
	"math"
	"math/rand"
	"testing"

	"graphalign/internal/matrix"
)

func denseOp(a *matrix.Dense) SymOp {
	return SymOp{N: a.Rows, Apply: func(out, x []float64) {
		copy(out, a.MulVec(x))
	}}
}

func TestLanczosSmallestMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomSymmetric(30, 7)
	vals, vecs, err := LanczosSmallest(denseOp(a), 4, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	dv, _, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if math.Abs(vals[i]-dv[i]) > 1e-6 {
			t.Errorf("lanczos val[%d] = %v, dense %v", i, vals[i], dv[i])
		}
	}
	if r := residual(a, vals, vecs); r > 1e-6 {
		t.Errorf("residual %v", r)
	}
}

func TestLanczosLargestMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomSymmetric(25, 8)
	vals, _, err := LanczosLargest(denseOp(a), 3, 25, rng)
	if err != nil {
		t.Fatal(err)
	}
	dv, _, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	n := len(dv)
	for i := 0; i < 3; i++ {
		if math.Abs(vals[i]-dv[n-1-i]) > 1e-6 {
			t.Errorf("largest val[%d] = %v, dense %v", i, vals[i], dv[n-1-i])
		}
	}
}

func TestLanczosOnCSR(t *testing.T) {
	// Normalized-Laplacian-like matrix: path graph Laplacian has smallest
	// eigenvalue 0.
	n := 20
	var rI, cI []int
	var vals []float64
	for i := 0; i < n; i++ {
		rI = append(rI, i)
		cI = append(cI, i)
		vals = append(vals, 1)
		deg := func(k int) float64 {
			if k == 0 || k == n-1 {
				return 1
			}
			return 2
		}
		for _, j := range []int{i - 1, i + 1} {
			if j < 0 || j >= n {
				continue
			}
			rI = append(rI, i)
			cI = append(cI, j)
			vals = append(vals, -1/math.Sqrt(deg(i)*deg(j)))
		}
	}
	m, err := matrix.NewCSR(n, n, rI, cI, vals)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	lv, _, err := LanczosSmallest(CSROp(m), 2, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lv[0]) > 1e-8 {
		t.Errorf("smallest Laplacian eigenvalue = %v, want 0", lv[0])
	}
	if lv[1] <= 1e-8 {
		t.Errorf("second eigenvalue should be positive for a connected path, got %v", lv[1])
	}
}

func TestLanczosErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomSymmetric(5, 9)
	if _, _, err := LanczosSmallest(denseOp(a), 0, 10, rng); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := LanczosSmallest(denseOp(a), 6, 10, rng); err == nil {
		t.Error("k>n accepted")
	}
}

func TestPowerIteration(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Diagonal matrix: dominant eigenpair is (5, e3).
	a := matrix.DenseFromRows([][]float64{
		{1, 0, 0}, {0, 2, 0}, {0, 0, 5},
	})
	val, vec := PowerIteration(denseOp(a), 500, 1e-12, rng)
	if math.Abs(val-5) > 1e-6 {
		t.Errorf("dominant eigenvalue = %v, want 5", val)
	}
	if math.Abs(math.Abs(vec[2])-1) > 1e-4 {
		t.Errorf("dominant eigenvector = %v", vec)
	}
}
