package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"graphalign/internal/matrix"
)

func randomMat(rows, cols int, seed int64) *matrix.Dense {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.NewDense(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// reconstruct returns U diag(s) Vᵀ.
func reconstruct(u *matrix.Dense, s []float64, v *matrix.Dense) *matrix.Dense {
	us := u.Clone()
	for j := range s {
		for i := 0; i < u.Rows; i++ {
			us.Set(i, j, u.At(i, j)*s[j])
		}
	}
	return matrix.MulABT(us, v)
}

func maxDiff(a, b *matrix.Dense) float64 {
	worst := 0.0
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestSVDReconstructionTall(t *testing.T) {
	a := randomMat(8, 5, 1)
	u, s, v := SVD(a)
	if d := maxDiff(reconstruct(u, s, v), a); d > 1e-8 {
		t.Fatalf("reconstruction error %v", d)
	}
	for i := 1; i < len(s); i++ {
		if s[i] > s[i-1] {
			t.Fatal("singular values not descending")
		}
		if s[i] < 0 {
			t.Fatal("negative singular value")
		}
	}
}

func TestSVDAnyWide(t *testing.T) {
	a := randomMat(4, 9, 2)
	u, s, v := SVDAny(a)
	if u.Rows != 4 || v.Rows != 9 || len(s) != 4 {
		t.Fatalf("thin shapes wrong: u %dx%d v %dx%d r=%d", u.Rows, u.Cols, v.Rows, v.Cols, len(s))
	}
	if d := maxDiff(reconstruct(u, s, v), a); d > 1e-8 {
		t.Fatalf("reconstruction error %v", d)
	}
}

func TestPropertySVDSingularValuesMatchGram(t *testing.T) {
	// Squares of singular values are the eigenvalues of AᵀA.
	f := func(seed int64) bool {
		a := randomMat(7, 5, seed)
		_, s, _ := SVD(a)
		gram := matrix.Mul(a.T(), a)
		vals, _, err := SymEigen(gram)
		if err != nil {
			return false
		}
		// vals ascending; s descending.
		for i := 0; i < 5; i++ {
			if math.Abs(s[i]*s[i]-vals[4-i]) > 1e-7*(1+vals[4-i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPseudoInverseProperties(t *testing.T) {
	a := randomMat(6, 4, 3)
	pinv := PseudoInverse(a, 1e-12)
	if pinv.Rows != 4 || pinv.Cols != 6 {
		t.Fatalf("pinv shape %dx%d", pinv.Rows, pinv.Cols)
	}
	// A A+ A = A.
	apa := matrix.Mul(matrix.Mul(a, pinv), a)
	if d := maxDiff(apa, a); d > 1e-8 {
		t.Fatalf("A A+ A != A (diff %v)", d)
	}
	// A+ A A+ = A+.
	pap := matrix.Mul(matrix.Mul(pinv, a), pinv)
	if d := maxDiff(pap, pinv); d > 1e-8 {
		t.Fatalf("A+ A A+ != A+ (diff %v)", d)
	}
}

func TestPseudoInverseRankDeficient(t *testing.T) {
	// Rank-1 matrix.
	a := matrix.Outer([]float64{1, 2, 3}, []float64{4, 5})
	pinv := PseudoInverse(a, 1e-10)
	apa := matrix.Mul(matrix.Mul(a, pinv), a)
	if d := maxDiff(apa, a); d > 1e-8 {
		t.Fatalf("rank-deficient A A+ A != A (diff %v)", d)
	}
}

func TestTopKSVD(t *testing.T) {
	a := randomMat(6, 6, 4)
	u, s, v := TopKSVD(a, 3)
	if u.Cols != 3 || v.Cols != 3 || len(s) != 3 {
		t.Fatal("TopKSVD shapes wrong")
	}
	fu, fs, fv := SVDAny(a)
	for j := 0; j < 3; j++ {
		if math.Abs(s[j]-fs[j]) > 1e-10 {
			t.Fatal("TopKSVD values differ from full SVD")
		}
		for i := 0; i < 6; i++ {
			if u.At(i, j) != fu.At(i, j) || v.At(i, j) != fv.At(i, j) {
				t.Fatal("TopKSVD vectors differ from full SVD")
			}
		}
	}
	// k larger than rank clamps.
	_, s2, _ := TopKSVD(a, 100)
	if len(s2) != 6 {
		t.Fatal("TopKSVD should clamp k")
	}
}

func TestTopKSVDSymMatchesJacobi(t *testing.T) {
	f := func(seed int64) bool {
		a := randomSymmetric(8, seed)
		u, s, v, err := TopKSVDSym(a, 8)
		if err != nil {
			return false
		}
		// Reconstruction must equal a.
		if maxDiff(reconstruct(u, s, v), a) > 1e-7 {
			return false
		}
		// Values must match Jacobi SVD.
		_, js, _ := SVDAny(a)
		for i := range s {
			if math.Abs(s[i]-js[i]) > 1e-7*(1+js[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
