package linalg

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"graphalign/internal/matrix"
)

// SymOp is a symmetric linear operator y = A x given as a function that
// fills out with A*x. It lets Lanczos run on CSR matrices, shifted
// Laplacians, etc. without materializing anything dense.
type SymOp struct {
	N     int
	Apply func(out, x []float64)
}

// CSROp wraps a square CSR matrix as a SymOp (the matrix is assumed to be
// symmetric; this is not verified).
func CSROp(m *matrix.CSR) SymOp {
	if m.NumRows != m.NumCols {
		panic("linalg: CSROp requires a square matrix")
	}
	return SymOp{N: m.NumRows, Apply: m.MulVecTo}
}

// LanczosSmallest computes the k algebraically smallest eigenpairs of the
// symmetric operator op, returning eigenvalues ascending and eigenvectors as
// columns of an N x k dense matrix. It runs Lanczos with full
// reorthogonalization for min(maxIter, N) steps and diagonalizes the
// resulting tridiagonal matrix with SymEigen.
//
// Used for the normalized Laplacian, whose small eigenvalues carry the
// global structure GRASP needs.
func LanczosSmallest(op SymOp, k, maxIter int, rng *rand.Rand) (vals []float64, vecs *matrix.Dense, err error) {
	return lanczos(context.Background(), op, k, maxIter, rng, false)
}

// LanczosSmallestCtx is LanczosSmallest with cooperative cancellation
// checked once per Lanczos step; it returns ctx.Err() when interrupted.
func LanczosSmallestCtx(ctx context.Context, op SymOp, k, maxIter int, rng *rand.Rand) (vals []float64, vecs *matrix.Dense, err error) {
	return lanczos(ctx, op, k, maxIter, rng, false)
}

// LanczosLargest computes the k algebraically largest eigenpairs of op,
// returned in descending order of eigenvalue.
func LanczosLargest(op SymOp, k, maxIter int, rng *rand.Rand) (vals []float64, vecs *matrix.Dense, err error) {
	return lanczos(context.Background(), op, k, maxIter, rng, true)
}

// LanczosLargestCtx is LanczosLargest with cooperative cancellation checked
// once per Lanczos step.
func LanczosLargestCtx(ctx context.Context, op SymOp, k, maxIter int, rng *rand.Rand) (vals []float64, vecs *matrix.Dense, err error) {
	return lanczos(ctx, op, k, maxIter, rng, true)
}

func lanczos(ctx context.Context, op SymOp, k, maxIter int, rng *rand.Rand, largest bool) ([]float64, *matrix.Dense, error) {
	n := op.N
	if k <= 0 || k > n {
		return nil, nil, fmt.Errorf("linalg: lanczos k=%d out of range (n=%d)", k, n)
	}
	steps := maxIter
	if steps > n {
		steps = n
	}
	if steps < k {
		steps = k
	}
	// Lanczos basis vectors (full reorthogonalization keeps them usable).
	q := make([][]float64, 0, steps)
	alpha := make([]float64, 0, steps)
	beta := make([]float64, 0, steps) // beta[j] links q[j] and q[j+1]

	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	matrix.Normalize(v)
	w := make([]float64, n)

	for j := 0; j < steps; j++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		qj := append([]float64(nil), v...)
		q = append(q, qj)
		op.Apply(w, qj)
		if j > 0 {
			matrix.AxpyVec(w, q[j-1], -beta[j-1])
		}
		a := matrix.Dot(w, qj)
		alpha = append(alpha, a)
		matrix.AxpyVec(w, qj, -a)
		// Full reorthogonalization against all previous basis vectors.
		for _, qi := range q {
			matrix.AxpyVec(w, qi, -matrix.Dot(w, qi))
		}
		b := matrix.Norm2(w)
		if b < 1e-12 {
			// Invariant subspace found; restart with a random orthogonal vector
			// or stop if we already span enough.
			if len(q) >= k {
				break
			}
			for i := range w {
				w[i] = rng.NormFloat64()
			}
			for _, qi := range q {
				matrix.AxpyVec(w, qi, -matrix.Dot(w, qi))
			}
			b = matrix.Norm2(w)
			if b < 1e-12 {
				break
			}
		}
		if j < steps-1 {
			beta = append(beta, b)
			for i := range v {
				v[i] = w[i] / b
			}
		}
	}

	m := len(q)
	if m < k {
		k = m
	}
	// Diagonalize the m x m tridiagonal matrix T.
	t := matrix.NewDense(m, m)
	for i := 0; i < m; i++ {
		t.Set(i, i, alpha[i])
		if i+1 < m && i < len(beta) {
			t.Set(i, i+1, beta[i])
			t.Set(i+1, i, beta[i])
		}
	}
	tv, tz, err := SymEigenCtx(ctx, t)
	if err != nil {
		return nil, nil, err
	}
	// Select k eigenpairs from the requested end of the spectrum.
	sel := make([]int, k)
	if largest {
		for i := 0; i < k; i++ {
			sel[i] = m - 1 - i
		}
	} else {
		for i := 0; i < k; i++ {
			sel[i] = i
		}
	}
	vals := make([]float64, k)
	vecs := matrix.NewDense(n, k)
	for c, s := range sel {
		vals[c] = tv[s]
		// Ritz vector: sum_j tz[j][s] * q[j]
		col := make([]float64, n)
		for j := 0; j < m; j++ {
			matrix.AxpyVec(col, q[j], tz.At(j, s))
		}
		matrix.Normalize(col)
		for i := 0; i < n; i++ {
			vecs.Set(i, c, col[i])
		}
	}
	return vals, vecs, nil
}

// PowerIteration returns the dominant eigenvalue (by magnitude) and
// eigenvector of op, iterating at most maxIter times or until the vector
// moves by less than tol in the infinity norm.
func PowerIteration(op SymOp, maxIter int, tol float64, rng *rand.Rand) (val float64, vec []float64) {
	n := op.N
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64() + 0.1
	}
	matrix.Normalize(v)
	w := make([]float64, n)
	for it := 0; it < maxIter; it++ {
		op.Apply(w, v)
		nrm := matrix.Norm2(w)
		if nrm == 0 {
			return 0, v
		}
		diff := 0.0
		for i := range w {
			nw := w[i] / nrm
			if d := math.Abs(nw - v[i]); d > diff {
				diff = d
			}
			v[i] = nw
		}
		if diff < tol {
			break
		}
	}
	op.Apply(w, v)
	return matrix.Dot(v, w), v
}
