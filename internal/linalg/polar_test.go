package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"graphalign/internal/matrix"
)

func TestInverseKnown(t *testing.T) {
	a := matrix.DenseFromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.DenseFromRows([][]float64{{0.6, -0.7}, {-0.2, 0.4}})
	if d := maxDiff(inv, want); d > 1e-12 {
		t.Fatalf("inverse wrong by %v", d)
	}
}

func TestInverseSingular(t *testing.T) {
	a := matrix.DenseFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Inverse(a); err == nil {
		t.Error("singular matrix inverted")
	}
	if _, err := Inverse(matrix.NewDense(2, 3)); err == nil {
		t.Error("non-square matrix inverted")
	}
}

func TestPropertyInverse(t *testing.T) {
	f := func(seed int64) bool {
		a := randomMat(6, 6, seed)
		inv, err := Inverse(a)
		if err != nil {
			return true // random singular matrices are fine to skip
		}
		prod := matrix.Mul(a, inv)
		for i := 0; i < 6; i++ {
			for j := 0; j < 6; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(prod.At(i, j)-want) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPolarOrthogonalIsOrthogonal(t *testing.T) {
	f := func(seed int64) bool {
		m := randomMat(5, 5, seed)
		q := PolarOrthogonal(m)
		qtq := matrix.Mul(q.T(), q)
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(qtq.At(i, j)-want) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPolarRecoversRotation(t *testing.T) {
	// For M = R D with R orthogonal and D diagonal positive, polar(M) = R.
	rng := rand.New(rand.NewSource(11))
	r := PolarOrthogonal(randomMat(4, 4, 12)) // some orthogonal matrix
	d := matrix.NewDense(4, 4)
	for i := 0; i < 4; i++ {
		d.Set(i, i, 1+rng.Float64())
	}
	m := matrix.Mul(r, d)
	got := PolarOrthogonal(m)
	if diff := maxDiff(got, r); diff > 1e-6 {
		t.Fatalf("polar factor off by %v", diff)
	}
}

func TestPolarMaximizesTrace(t *testing.T) {
	// polar(M) maximizes <Q, M> over orthogonal Q; any random rotation must
	// score no higher.
	m := randomMat(4, 4, 13)
	q := PolarOrthogonal(m)
	best := traceProd(q, m)
	for seed := int64(0); seed < 10; seed++ {
		r := PolarOrthogonal(randomMat(4, 4, 100+seed))
		if traceProd(r, m) > best+1e-8 {
			t.Fatalf("random rotation beats polar factor")
		}
	}
}

func traceProd(q, m *matrix.Dense) float64 {
	var s float64
	for i := range q.Data {
		s += q.Data[i] * m.Data[i]
	}
	return s
}
