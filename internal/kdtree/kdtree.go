// Package kdtree provides a k-d tree over float64 points for the Euclidean
// nearest-neighbor queries REGAL and CONE use to extract alignments from
// embeddings.
package kdtree

import (
	"container/heap"
	"math"
	"sort"
)

// Tree is an immutable k-d tree over points of equal dimension.
type Tree struct {
	dim    int
	points [][]float64 // original points, indexed by id
	nodes  []node
	root   int
}

type node struct {
	id          int // point id
	axis        int
	left, right int // node indices, -1 when absent
}

// Build constructs a k-d tree over the given points. The points slice is
// retained (not copied); ids are indices into it. An empty slice yields a
// tree whose queries return no results.
func Build(points [][]float64) *Tree {
	t := &Tree{points: points, root: -1}
	if len(points) == 0 {
		return t
	}
	t.dim = len(points[0])
	ids := make([]int, len(points))
	for i := range ids {
		ids[i] = i
	}
	t.nodes = make([]node, 0, len(points))
	t.root = t.build(ids, 0)
	return t
}

func (t *Tree) build(ids []int, depth int) int {
	if len(ids) == 0 {
		return -1
	}
	axis := depth % t.dim
	sort.Slice(ids, func(a, b int) bool {
		return t.points[ids[a]][axis] < t.points[ids[b]][axis]
	})
	mid := len(ids) / 2
	idx := len(t.nodes)
	t.nodes = append(t.nodes, node{id: ids[mid], axis: axis, left: -1, right: -1})
	left := t.build(append([]int(nil), ids[:mid]...), depth+1)
	right := t.build(append([]int(nil), ids[mid+1:]...), depth+1)
	t.nodes[idx].left = left
	t.nodes[idx].right = right
	return idx
}

// result is a max-heap entry for k-NN search.
type result struct {
	id   int
	dist float64 // squared distance
}

// resultHeap is a max-heap ordered worst-first: larger distance first, and
// among equal distances the larger id. The root is therefore the candidate
// evicted first, which makes the kept k-set — and the final best-first
// ordering — prefer lower ids on distance ties. This tie contract is what
// lets the sparse assignment pipeline's k-NN candidates agree with dense
// per-row top-k selection (both resolve ties to the lowest index).
type resultHeap []result

func (h resultHeap) Len() int { return len(h) }
func (h resultHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist > h[j].dist
	}
	return h[i].id > h[j].id
}
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NearestK returns the ids and squared Euclidean distances of the k points
// nearest to q, ordered by increasing distance with ties broken by lower id.
// Fewer than k results are returned when the tree holds fewer points. The
// result is a pure function of (tree, q, k) — queries are deterministic and
// safe to issue concurrently from multiple goroutines.
func (t *Tree) NearestK(q []float64, k int) (ids []int, dists []float64) {
	if t.root == -1 || k <= 0 {
		return nil, nil
	}
	h := make(resultHeap, 0, k+1)
	t.search(t.root, q, k, &h)
	// Heap pops worst-first; reverse into best-first order.
	ids = make([]int, len(h))
	dists = make([]float64, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		r := heap.Pop(&h).(result)
		ids[i] = r.id
		dists[i] = r.dist
	}
	return ids, dists
}

// Nearest returns the single nearest point id and its squared distance.
func (t *Tree) Nearest(q []float64) (id int, dist float64) {
	ids, dists := t.NearestK(q, 1)
	if len(ids) == 0 {
		return -1, math.Inf(1)
	}
	return ids[0], dists[0]
}

func (t *Tree) search(ni int, q []float64, k int, h *resultHeap) {
	if ni == -1 {
		return
	}
	nd := t.nodes[ni]
	p := t.points[nd.id]
	d := sqDist(p, q)
	if h.Len() < k {
		heap.Push(h, result{nd.id, d})
	} else if worst := (*h)[0]; d < worst.dist || (d == worst.dist && nd.id < worst.id) {
		heap.Pop(h)
		heap.Push(h, result{nd.id, d})
	}
	diff := q[nd.axis] - p[nd.axis]
	first, second := nd.left, nd.right
	if diff > 0 {
		first, second = nd.right, nd.left
	}
	t.search(first, q, k, h)
	// <= rather than <: a point exactly on the splitting boundary can tie the
	// current worst distance with a lower id, which the tie contract prefers.
	if h.Len() < k || diff*diff <= (*h)[0].dist {
		t.search(second, q, k, h)
	}
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}
