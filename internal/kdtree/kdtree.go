// Package kdtree provides a k-d tree over float64 points for the Euclidean
// nearest-neighbor queries the sparse assignment pipeline runs against raw
// embedding rows (REGAL, CONE, GRASP).
//
// The tree is bucketed: internal nodes carry only a split axis and value,
// and points live in leaf buckets of up to leafSize entries, reordered into
// one contiguous backing array at build time. Queries are iterative (an
// explicit visit stack instead of recursion) and allocation-free in steady
// state when the caller supplies a reusable Scratch — the layout that lets
// assign.TopKEmbedding issue millions of queries without garbage.
package kdtree

import (
	"math"
	"sort"
)

// leafSize is the bucket capacity. Buckets amortize the per-node traversal
// bookkeeping over a short linear scan, which is faster than a node-per-point
// tree for every dimension the tree path serves (the scan is contiguous; the
// pointer chase is not).
const leafSize = 24

// Tree is an immutable k-d tree over points of equal dimension.
type Tree struct {
	dim   int
	count int
	// pts holds the points reordered leaf-contiguous (row r at
	// pts[r*dim:(r+1)*dim]); ids maps a row back to the original point id.
	pts   []float64
	ids   []int32
	nodes []node
	root  int32
}

// node is either an internal split (axis >= 0: children left/right, split
// value on that axis) or a leaf (axis == -1: pts rows [left, right)).
type node struct {
	split       float64
	axis        int32
	left, right int32
}

// Build constructs a k-d tree over the given points. Points are copied into
// a contiguous internal layout; ids in query results are indices into the
// original slice. An empty slice yields a tree whose queries return no
// results. Construction is deterministic: splits sort by (coordinate, id).
func Build(points [][]float64) *Tree {
	t := &Tree{root: -1}
	if len(points) == 0 {
		return t
	}
	t.dim = len(points[0])
	t.count = len(points)
	perm := make([]int32, len(points))
	for i := range perm {
		perm[i] = int32(i)
	}
	t.pts = make([]float64, 0, len(points)*t.dim)
	t.ids = make([]int32, 0, len(points))
	t.nodes = make([]node, 0, 2*(len(points)/leafSize+1))
	s := &permSorter{points: points}
	t.root = t.build(points, perm, 0, s)
	return t
}

// permSorter sorts a permutation subrange by (coordinate on axis, id); one
// instance is reused across every split of a build so sort.Sort never
// allocates per call. axis < 0 sorts by id alone (leaf order).
type permSorter struct {
	perm   []int32
	points [][]float64
	axis   int
}

func (s *permSorter) Len() int      { return len(s.perm) }
func (s *permSorter) Swap(a, b int) { s.perm[a], s.perm[b] = s.perm[b], s.perm[a] }
func (s *permSorter) Less(a, b int) bool {
	ia, ib := s.perm[a], s.perm[b]
	if s.axis >= 0 {
		pa, pb := s.points[ia][s.axis], s.points[ib][s.axis]
		if pa != pb {
			return pa < pb
		}
	}
	return ia < ib
}

func (t *Tree) build(points [][]float64, perm []int32, depth int, s *permSorter) int32 {
	if len(perm) <= leafSize {
		// Leaf: store points in ascending id order. The scan then meets ids
		// ascending, so on exact distance ties the incumbent (lower id) is
		// kept by the heap's strict replacement rule.
		s.perm, s.axis = perm, -1
		sort.Sort(s)
		lo := int32(len(t.ids))
		for _, id := range perm {
			t.ids = append(t.ids, id)
			t.pts = append(t.pts, points[id]...)
		}
		t.nodes = append(t.nodes, node{axis: -1, left: lo, right: int32(len(t.ids))})
		return int32(len(t.nodes) - 1)
	}
	axis := depth % t.dim
	s.perm, s.axis = perm, axis
	sort.Sort(s)
	mid := len(perm) / 2
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{axis: int32(axis), split: points[perm[mid]][axis]})
	l := t.build(points, perm[:mid], depth+1, s)
	r := t.build(points, perm[mid:], depth+1, s)
	t.nodes[idx].left, t.nodes[idx].right = l, r
	return idx
}

// result is a bounded max-heap entry: the root is the worst kept candidate
// (largest distance, then largest id), so evictions keep low ids on ties.
type result struct {
	dist float64 // squared distance
	id   int32
}

// visit is a pending subtree on the explicit search stack, with the lower
// bound on its distance to the query known when it was deferred (the squared
// split-plane gap; 0 for the near child, which is never prunable).
type visit struct {
	bound float64
	ni    int32
}

// Scratch holds the reusable per-query state of NearestKInto: the bounded
// result heap, the visit stack, and the output arrays. A zero Scratch is
// ready to use; after the first queries at a given k no further allocation
// occurs. A Scratch must not be shared between concurrent queries — give
// each worker goroutine its own.
type Scratch struct {
	heap  []result
	stack []visit
	ids   []int
	dists []float64
}

// NewScratch returns an empty Scratch ready for NearestKInto.
func NewScratch() *Scratch { return &Scratch{} }

// NearestK returns the ids and squared Euclidean distances of the k points
// nearest to q, ordered by increasing distance with ties broken by lower id.
// Fewer than k results are returned when the tree holds fewer points. The
// result is a pure function of (tree, q, k) — queries are deterministic and
// safe to issue concurrently from multiple goroutines. Each call allocates
// its working state; batch callers should use NearestKInto with a reused
// Scratch instead.
func (t *Tree) NearestK(q []float64, k int) (ids []int, dists []float64) {
	var s Scratch
	sids, sdists := t.NearestKInto(q, k, &s)
	if sids == nil {
		return nil, nil
	}
	return append([]int(nil), sids...), append([]float64(nil), sdists...)
}

// Nearest returns the single nearest point id and its squared distance.
func (t *Tree) Nearest(q []float64) (id int, dist float64) {
	var s Scratch
	ids, dists := t.NearestKInto(q, 1, &s)
	if len(ids) == 0 {
		return -1, math.Inf(1)
	}
	return ids[0], dists[0]
}

// NearestKInto is NearestK writing its results into s: the returned slices
// alias s and are valid until the next query on it. With a warm Scratch a
// query performs no allocation. Same ordering contract as NearestK:
// ascending distance, ties broken by ascending id.
func (t *Tree) NearestKInto(q []float64, k int, s *Scratch) (ids []int, dists []float64) {
	if t.root == -1 || k <= 0 {
		return nil, nil
	}
	if k > t.count {
		k = t.count
	}
	h := s.heap[:0]
	if cap(h) < k {
		h = make([]result, 0, k)
	}
	stack := s.stack[:0]
	stack = append(stack, visit{0, t.root})
	// bound is the current worst kept distance, mirrored out of the heap root
	// so the hot leaf scan compares against a register, valid once len(h)==k.
	bound := math.Inf(1)
	dim := t.dim
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		// Re-check the prune bound at pop time: it may have tightened since
		// this subtree was deferred. Ties (==) must still descend — a point
		// exactly on the boundary can tie the worst distance with a lower id,
		// which the tie contract prefers.
		if len(h) == k && v.bound > bound {
			continue
		}
		nd := &t.nodes[v.ni]
		if nd.axis >= 0 {
			diff := q[nd.axis] - nd.split
			first, second := nd.left, nd.right
			if diff > 0 {
				first, second = second, first
			}
			// LIFO: push the far child first so the near child is explored
			// first and tightens the bound before the far side is considered.
			stack = append(stack, visit{diff * diff, second}, visit{0, first})
			continue
		}
		for r := nd.left; r < nd.right; r++ {
			p := t.pts[int(r)*dim : (int(r)+1)*dim]
			var d2 float64
			for c, pc := range p {
				d := pc - q[c]
				d2 += d * d
			}
			if len(h) < k {
				h = append(h, result{d2, t.ids[r]})
				heapSiftUp(h, len(h)-1)
				if len(h) == k {
					bound = h[0].dist
				}
				continue
			}
			if d2 > bound || (d2 == bound && t.ids[r] >= h[0].id) {
				continue
			}
			h[0] = result{d2, t.ids[r]}
			heapSiftDownN(h, 0, len(h))
			bound = h[0].dist
		}
	}
	s.stack = stack
	// In-place heap-sort: repeatedly swap the worst candidate to the tail,
	// yielding ascending (distance, id) order.
	s.heap = h
	for l := len(h) - 1; l > 0; l-- {
		h[0], h[l] = h[l], h[0]
		heapSiftDownN(h, 0, l)
	}
	if cap(s.ids) < len(h) {
		s.ids = make([]int, len(h))
		s.dists = make([]float64, len(h))
	}
	ids = s.ids[:len(h)]
	dists = s.dists[:len(h)]
	for i, r := range h {
		ids[i] = int(r.id)
		dists[i] = r.dist
	}
	return ids, dists
}

// resultWorse reports whether a is a worse candidate than b: farther, or at
// equal distance the larger id. The heap is a max-heap under this order.
func resultWorse(a, b result) bool {
	if a.dist != b.dist {
		return a.dist > b.dist
	}
	return a.id > b.id
}

func heapSiftUp(h []result, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !resultWorse(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func heapSiftDownN(h []result, i, length int) {
	for {
		l, r := 2*i+1, 2*i+2
		max := i
		if l < length && resultWorse(h[l], h[max]) {
			max = l
		}
		if r < length && resultWorse(h[r], h[max]) {
			max = r
		}
		if max == i {
			return
		}
		h[i], h[max] = h[max], h[i]
		i = max
	}
}
