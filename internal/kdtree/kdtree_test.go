package kdtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randomPoints(n, d int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		pts[i] = p
	}
	return pts
}

func bruteNearestK(pts [][]float64, q []float64, k int) ([]int, []float64) {
	type pd struct {
		id int
		d  float64
	}
	all := make([]pd, len(pts))
	for i, p := range pts {
		var s float64
		for j := range p {
			d := p[j] - q[j]
			s += d * d
		}
		all[i] = pd{i, s}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].d < all[b].d })
	if k > len(all) {
		k = len(all)
	}
	ids := make([]int, k)
	ds := make([]float64, k)
	for i := 0; i < k; i++ {
		ids[i] = all[i].id
		ds[i] = all[i].d
	}
	return ids, ds
}

func TestNearestKnown(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 0}, {5, 5}}
	tr := Build(pts)
	id, d := tr.Nearest([]float64{0.9, 0.1})
	if id != 1 {
		t.Fatalf("nearest = %d, want 1", id)
	}
	if math.Abs(d-(0.01+0.01)) > 1e-12 {
		t.Fatalf("dist = %v", d)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := Build(nil)
	if id, d := tr.Nearest([]float64{1}); id != -1 || !math.IsInf(d, 1) {
		t.Error("empty tree should return -1/inf")
	}
	if ids, _ := tr.NearestK([]float64{1}, 3); ids != nil {
		t.Error("empty tree NearestK should return nil")
	}
}

func TestPropertyNearestKMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		pts := randomPoints(60, 3, seed)
		tr := Build(pts)
		rng := rand.New(rand.NewSource(seed + 999))
		q := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		for _, k := range []int{1, 5, 60, 100} {
			gotIDs, gotDs := tr.NearestK(q, k)
			wantIDs, wantDs := bruteNearestK(pts, q, k)
			if len(gotIDs) != len(wantIDs) {
				return false
			}
			for i := range gotDs {
				// Compare distances (ids can tie).
				if math.Abs(gotDs[i]-wantDs[i]) > 1e-12 {
					return false
				}
			}
			_ = wantIDs
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestNearestKOrdering(t *testing.T) {
	pts := randomPoints(40, 2, 5)
	tr := Build(pts)
	_, ds := tr.NearestK([]float64{0, 0}, 10)
	if !sort.Float64sAreSorted(ds) {
		t.Error("NearestK distances must be ascending")
	}
}

// bruteNearestKTied is bruteNearestK with the full tie contract the sparse
// candidate pipeline relies on: ascending distance, then ascending id.
func bruteNearestKTied(pts [][]float64, q []float64, k int) []int {
	type pd struct {
		id int
		d  float64
	}
	all := make([]pd, len(pts))
	for i, p := range pts {
		var s float64
		for j := range p {
			d := p[j] - q[j]
			s += d * d
		}
		all[i] = pd{i, s}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].d != all[b].d {
			return all[a].d < all[b].d
		}
		return all[a].id < all[b].id
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].id
	}
	return out
}

// TestNearestKTieContract pins the documented ordering — (distance asc,
// id asc) — which TopKEmbedding needs to agree bitwise with dense top-k
// selection. Quantized coordinates force many exact distance ties.
func TestNearestKTieContract(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{float64(rng.Intn(3)), float64(rng.Intn(3))}
		}
		tr := Build(pts)
		q := []float64{float64(rng.Intn(3)), float64(rng.Intn(3))}
		for _, k := range []int{1, 3, n} {
			gotIDs, gotDs := tr.NearestK(q, k)
			wantIDs := bruteNearestKTied(pts, q, k)
			for i := range wantIDs {
				if gotIDs[i] != wantIDs[i] {
					t.Fatalf("trial %d k=%d: ids %v, want %v (dists %v)", trial, k, gotIDs, wantIDs, gotDs)
				}
			}
		}
	}
}

func TestDuplicatePointTies(t *testing.T) {
	// Exact duplicates must surface in ascending id order.
	pts := [][]float64{{2, 2}, {1, 1}, {1, 1}, {1, 1}, {2, 2}}
	tr := Build(pts)
	ids, ds := tr.NearestK([]float64{1, 1}, 5)
	want := []int{1, 2, 3, 0, 4}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v (ds %v), want %v", ids, ds, want)
		}
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := [][]float64{{1, 1}, {1, 1}, {2, 2}}
	tr := Build(pts)
	ids, ds := tr.NearestK([]float64{1, 1}, 2)
	if len(ids) != 2 || ds[0] != 0 || ds[1] != 0 {
		t.Errorf("duplicates: ids=%v ds=%v", ids, ds)
	}
}

// TestAdversarialDuplicateCoordinates stresses the tie contract where it is
// hardest to honor: runs of exact duplicates longer than a leaf bucket (so
// ties straddle leaf boundaries and arrive out of id order), interleaved with
// near-misses that tie on the split axis only. Every query must still return
// (distance asc, id asc) exactly.
func TestAdversarialDuplicateCoordinates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// 4*leafSize points drawn from just 4 distinct locations: each location's
	// duplicate run exceeds leafSize, and ids are assigned in shuffled order
	// so ascending-id output cannot fall out of insertion order by accident.
	locs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	n := 4 * leafSize
	pts := make([][]float64, n)
	order := rng.Perm(n)
	for i, o := range order {
		pts[o] = locs[i%len(locs)]
	}
	tr := Build(pts)
	queries := append([][]float64{{0.5, 0.5}, {0, 0}, {1, 1}, {0, 0.5}}, locs...)
	for qi, q := range queries {
		for _, k := range []int{1, 3, leafSize, leafSize + 5, n} {
			gotIDs, gotDs := tr.NearestK(q, k)
			wantIDs := bruteNearestKTied(pts, q, k)
			if len(gotIDs) != len(wantIDs) {
				t.Fatalf("query %d k=%d: got %d results, want %d", qi, k, len(gotIDs), len(wantIDs))
			}
			for i := range wantIDs {
				if gotIDs[i] != wantIDs[i] {
					t.Fatalf("query %d k=%d pos %d: ids %v, want %v (dists %v)",
						qi, k, i, gotIDs, wantIDs, gotDs)
				}
			}
		}
	}
}

// TestScratchReuseMatchesFresh pins the scratch-reuse contract: a single
// Scratch carried across a mixed query sequence (varying k, duplicate-heavy
// and random points) returns exactly what fresh per-call state returns —
// no ordering drift from leftover heap or stack contents.
func TestScratchReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	pts := randomPoints(150, 3, 13)
	for i := 0; i < 30; i++ { // inject exact duplicates
		a, b := rng.Intn(len(pts)), rng.Intn(len(pts))
		pts[a] = pts[b]
	}
	tr := Build(pts)
	s := NewScratch()
	for trial := 0; trial < 200; trial++ {
		q := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if trial%3 == 0 { // exact hits force zero-distance ties
			q = pts[rng.Intn(len(pts))]
		}
		k := 1 + rng.Intn(20)
		gotIDs, gotDs := tr.NearestKInto(q, k, s)
		wantIDs, wantDs := tr.NearestK(q, k)
		if len(gotIDs) != len(wantIDs) {
			t.Fatalf("trial %d: reused scratch returned %d results, fresh %d", trial, len(gotIDs), len(wantIDs))
		}
		for i := range wantIDs {
			if gotIDs[i] != wantIDs[i] || gotDs[i] != wantDs[i] {
				t.Fatalf("trial %d pos %d: reused (%d,%v) vs fresh (%d,%v)",
					trial, i, gotIDs[i], gotDs[i], wantIDs[i], wantDs[i])
			}
		}
	}
}

// TestNearestKIntoAllocFree pins the steady-state zero-allocation contract
// of the scratch path.
func TestNearestKIntoAllocFree(t *testing.T) {
	pts := randomPoints(500, 4, 21)
	tr := Build(pts)
	s := NewScratch()
	q := []float64{0.1, -0.2, 0.3, -0.4}
	tr.NearestKInto(q, 16, s) // warm the scratch
	allocs := testing.AllocsPerRun(100, func() {
		tr.NearestKInto(q, 16, s)
	})
	if allocs != 0 {
		t.Errorf("NearestKInto with warm scratch: %v allocs/op, want 0", allocs)
	}
}
