package kdtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randomPoints(n, d int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		pts[i] = p
	}
	return pts
}

func bruteNearestK(pts [][]float64, q []float64, k int) ([]int, []float64) {
	type pd struct {
		id int
		d  float64
	}
	all := make([]pd, len(pts))
	for i, p := range pts {
		var s float64
		for j := range p {
			d := p[j] - q[j]
			s += d * d
		}
		all[i] = pd{i, s}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].d < all[b].d })
	if k > len(all) {
		k = len(all)
	}
	ids := make([]int, k)
	ds := make([]float64, k)
	for i := 0; i < k; i++ {
		ids[i] = all[i].id
		ds[i] = all[i].d
	}
	return ids, ds
}

func TestNearestKnown(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 0}, {5, 5}}
	tr := Build(pts)
	id, d := tr.Nearest([]float64{0.9, 0.1})
	if id != 1 {
		t.Fatalf("nearest = %d, want 1", id)
	}
	if math.Abs(d-(0.01+0.01)) > 1e-12 {
		t.Fatalf("dist = %v", d)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := Build(nil)
	if id, d := tr.Nearest([]float64{1}); id != -1 || !math.IsInf(d, 1) {
		t.Error("empty tree should return -1/inf")
	}
	if ids, _ := tr.NearestK([]float64{1}, 3); ids != nil {
		t.Error("empty tree NearestK should return nil")
	}
}

func TestPropertyNearestKMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		pts := randomPoints(60, 3, seed)
		tr := Build(pts)
		rng := rand.New(rand.NewSource(seed + 999))
		q := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		for _, k := range []int{1, 5, 60, 100} {
			gotIDs, gotDs := tr.NearestK(q, k)
			wantIDs, wantDs := bruteNearestK(pts, q, k)
			if len(gotIDs) != len(wantIDs) {
				return false
			}
			for i := range gotDs {
				// Compare distances (ids can tie).
				if math.Abs(gotDs[i]-wantDs[i]) > 1e-12 {
					return false
				}
			}
			_ = wantIDs
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestNearestKOrdering(t *testing.T) {
	pts := randomPoints(40, 2, 5)
	tr := Build(pts)
	_, ds := tr.NearestK([]float64{0, 0}, 10)
	if !sort.Float64sAreSorted(ds) {
		t.Error("NearestK distances must be ascending")
	}
}

// bruteNearestKTied is bruteNearestK with the full tie contract the sparse
// candidate pipeline relies on: ascending distance, then ascending id.
func bruteNearestKTied(pts [][]float64, q []float64, k int) []int {
	type pd struct {
		id int
		d  float64
	}
	all := make([]pd, len(pts))
	for i, p := range pts {
		var s float64
		for j := range p {
			d := p[j] - q[j]
			s += d * d
		}
		all[i] = pd{i, s}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].d != all[b].d {
			return all[a].d < all[b].d
		}
		return all[a].id < all[b].id
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].id
	}
	return out
}

// TestNearestKTieContract pins the documented ordering — (distance asc,
// id asc) — which TopKEmbedding needs to agree bitwise with dense top-k
// selection. Quantized coordinates force many exact distance ties.
func TestNearestKTieContract(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{float64(rng.Intn(3)), float64(rng.Intn(3))}
		}
		tr := Build(pts)
		q := []float64{float64(rng.Intn(3)), float64(rng.Intn(3))}
		for _, k := range []int{1, 3, n} {
			gotIDs, gotDs := tr.NearestK(q, k)
			wantIDs := bruteNearestKTied(pts, q, k)
			for i := range wantIDs {
				if gotIDs[i] != wantIDs[i] {
					t.Fatalf("trial %d k=%d: ids %v, want %v (dists %v)", trial, k, gotIDs, wantIDs, gotDs)
				}
			}
		}
	}
}

func TestDuplicatePointTies(t *testing.T) {
	// Exact duplicates must surface in ascending id order.
	pts := [][]float64{{2, 2}, {1, 1}, {1, 1}, {1, 1}, {2, 2}}
	tr := Build(pts)
	ids, ds := tr.NearestK([]float64{1, 1}, 5)
	want := []int{1, 2, 3, 0, 4}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v (ds %v), want %v", ids, ds, want)
		}
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := [][]float64{{1, 1}, {1, 1}, {2, 2}}
	tr := Build(pts)
	ids, ds := tr.NearestK([]float64{1, 1}, 2)
	if len(ids) != 2 || ds[0] != 0 || ds[1] != 0 {
		t.Errorf("duplicates: ids=%v ds=%v", ids, ds)
	}
}
