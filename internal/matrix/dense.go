// Package matrix provides the dense and sparse (CSR) float64 matrices used
// by the alignment algorithms. It is deliberately small: just the operations
// the algorithms need, implemented with contiguous row-major storage.
package matrix

import (
	"fmt"
	"math"

	"graphalign/internal/parallel"
)

// parallelFlops is the approximate multiply-add count above which the
// multiplication kernels fan rows out across the worker pool. Below it the
// goroutine handoff costs more than it saves. Row-blocked parallelism keeps
// results bitwise identical to the serial kernels: each output row is
// computed by exactly one goroutine in the same inner-loop order.
const parallelFlops = 1 << 21

// Dense is a row-major dense matrix of float64.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewDense allocates a zeroed Rows x Cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: invalid shape %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// DenseFromRows builds a Dense from a slice of equal-length rows.
func DenseFromRows(rows [][]float64) *Dense {
	r := len(rows)
	if r == 0 {
		return NewDense(0, 0)
	}
	c := len(rows[0])
	m := NewDense(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("matrix: ragged rows")
		}
		copy(m.Row(i), row)
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments element (i, j) by v.
func (m *Dense) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns a view of row i (aliases internal storage).
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Fill sets every element to v.
func (m *Dense) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Scale multiplies every element by s in place and returns m.
func (m *Dense) Scale(s float64) *Dense {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddScaled adds s*other to m element-wise in place and returns m.
func (m *Dense) AddScaled(other *Dense, s float64) *Dense {
	m.mustSameShape(other)
	for i, v := range other.Data {
		m.Data[i] += s * v
	}
	return m
}

// Hadamard multiplies m element-wise by other in place and returns m.
func (m *Dense) Hadamard(other *Dense) *Dense {
	m.mustSameShape(other)
	for i, v := range other.Data {
		m.Data[i] *= v
	}
	return m
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// Mul returns a*b. Large products are row-blocked across the worker pool;
// the result is bitwise identical to the serial computation.
func Mul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: mul shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewDense(a.Rows, b.Cols)
	mulRows := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for k, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.Row(k)
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
	if work := a.Rows * a.Cols * b.Cols; work >= parallelFlops {
		parallel.Blocks(0, a.Rows, mulRows)
	} else {
		mulRows(0, a.Rows)
	}
	return out
}

// MulABT returns a * bᵀ, i.e. out[i][j] = <a.Row(i), b.Row(j)>. Large
// products are row-blocked across the worker pool; the result is bitwise
// identical to the serial computation.
func MulABT(a, b *Dense) *Dense {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: mulABT shape mismatch %dx%d, %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewDense(a.Rows, b.Rows)
	mulRows := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for j := 0; j < b.Rows; j++ {
				brow := b.Row(j)
				var s float64
				for k, av := range arow {
					s += av * brow[k]
				}
				orow[j] = s
			}
		}
	}
	if work := a.Rows * a.Cols * b.Rows; work >= parallelFlops {
		parallel.Blocks(0, a.Rows, mulRows)
	} else {
		mulRows(0, a.Rows)
	}
	return out
}

// PairwiseSqDist returns the a.Rows x b.Rows matrix of squared Euclidean
// distances between rows of a and rows of b. Large products are row-blocked
// across the worker pool; each output row is computed by exactly one
// goroutine with the same inner-loop order as the serial kernel, so the
// result is bitwise identical for any worker count. This is the shared
// kernel behind the embedding-based similarity matrices (REGAL, CONE) and
// the dense fallback of the sparse assignment pipeline.
func PairwiseSqDist(a, b *Dense) *Dense {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: pairwiseSqDist dim mismatch %dx%d, %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewDense(a.Rows, b.Rows)
	distRows := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			SqDistInto(out.Row(i), a.Row(i), b)
		}
	}
	if work := a.Rows * a.Cols * b.Rows; work >= parallelFlops {
		parallel.Blocks(0, a.Rows, distRows)
	} else {
		distRows(0, a.Rows)
	}
	return out
}

// SqDistInto writes the squared Euclidean distance from q to every row of b
// into out (len b.Rows) and is the single-row kernel behind PairwiseSqDist:
// each distance accumulates dimension-ascending in its own chain, so values
// are bitwise identical to the one-row-at-a-time loop. Rows are processed
// eight at a time — eight independent accumulators hide the FP add latency —
// which is also what makes the sparse pipeline's brute-force candidate scan
// competitive without materializing the full matrix.
func SqDistInto(out, q []float64, b *Dense) {
	if len(q) != b.Cols {
		panic(fmt.Sprintf("matrix: sqDistInto dim mismatch %d vs %dx%d", len(q), b.Rows, b.Cols))
	}
	if len(out) != b.Rows {
		panic(fmt.Sprintf("matrix: sqDistInto out length %d, want %d", len(out), b.Rows))
	}
	d := b.Cols
	j := 0
	for ; j+8 <= b.Rows; j += 8 {
		base := j * d
		r0 := b.Data[base : base+d : base+d]
		r1 := b.Data[base+d : base+2*d : base+2*d]
		r2 := b.Data[base+2*d : base+3*d : base+3*d]
		r3 := b.Data[base+3*d : base+4*d : base+4*d]
		r4 := b.Data[base+4*d : base+5*d : base+5*d]
		r5 := b.Data[base+5*d : base+6*d : base+6*d]
		r6 := b.Data[base+6*d : base+7*d : base+7*d]
		r7 := b.Data[base+7*d : base+8*d : base+8*d]
		var s0, s1, s2, s3, s4, s5, s6, s7 float64
		for k, v := range q {
			d0 := v - r0[k]
			s0 += d0 * d0
			d1 := v - r1[k]
			s1 += d1 * d1
			d2 := v - r2[k]
			s2 += d2 * d2
			d3 := v - r3[k]
			s3 += d3 * d3
			d4 := v - r4[k]
			s4 += d4 * d4
			d5 := v - r5[k]
			s5 += d5 * d5
			d6 := v - r6[k]
			s6 += d6 * d6
			d7 := v - r7[k]
			s7 += d7 * d7
		}
		out[j], out[j+1], out[j+2], out[j+3] = s0, s1, s2, s3
		out[j+4], out[j+5], out[j+6], out[j+7] = s4, s5, s6, s7
	}
	for ; j < b.Rows; j++ {
		rj := b.Row(j)
		var d2 float64
		for k, v := range q {
			d := v - rj[k]
			d2 += d * d
		}
		out[j] = d2
	}
}

// MulVec returns m*x.
func (m *Dense) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("matrix: mulvec shape mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// FrobNorm returns the Frobenius norm.
func (m *Dense) FrobNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Sum returns the sum of all elements.
func (m *Dense) Sum() float64 {
	var s float64
	for _, v := range m.Data {
		s += v
	}
	return s
}

// MaxAbs returns the largest absolute element value (0 for empty).
func (m *Dense) MaxAbs() float64 {
	var s float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}

// RowSums returns the vector of row sums.
func (m *Dense) RowSums() []float64 {
	out := make([]float64, m.Rows)
	for i := range out {
		var s float64
		for _, v := range m.Row(i) {
			s += v
		}
		out[i] = s
	}
	return out
}

// ColSums returns the vector of column sums.
func (m *Dense) ColSums() []float64 {
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}

// Outer returns the outer product u vᵀ.
func Outer(u, v []float64) *Dense {
	out := NewDense(len(u), len(v))
	for i, uv := range u {
		if uv == 0 {
			continue
		}
		row := out.Row(i)
		for j, vv := range v {
			row[j] = uv * vv
		}
	}
	return out
}

// AddOuterScaled adds s * u vᵀ to m in place.
func (m *Dense) AddOuterScaled(u, v []float64, s float64) {
	if len(u) != m.Rows || len(v) != m.Cols {
		panic("matrix: addOuter shape mismatch")
	}
	for i, uv := range u {
		c := s * uv
		if c == 0 {
			continue
		}
		row := m.Row(i)
		for j, vv := range v {
			row[j] += c * vv
		}
	}
}

func (m *Dense) mustSameShape(o *Dense) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("matrix: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("matrix: dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// Normalize scales v to unit Euclidean norm in place and returns its
// original norm. A zero vector is left unchanged.
func Normalize(v []float64) float64 {
	n := Norm2(v)
	if n == 0 {
		return 0
	}
	for i := range v {
		v[i] /= n
	}
	return n
}

// AxpyVec computes y += s*x in place.
func AxpyVec(y []float64, x []float64, s float64) {
	if len(x) != len(y) {
		panic("matrix: axpy length mismatch")
	}
	for i, v := range x {
		y[i] += s * v
	}
}
