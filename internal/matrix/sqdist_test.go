package matrix

import (
	"math/rand"
	"testing"
)

func naivePairwiseSqDist(a, b *Dense) *Dense {
	out := NewDense(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				d := a.At(i, k) - b.At(j, k)
				s += d * d
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestPairwiseSqDistMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n, m, d := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(6)
		a, b := NewDense(n, d), NewDense(m, d)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		got := PairwiseSqDist(a, b)
		want := naivePairwiseSqDist(a, b)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("trial %d: flat %d: %v != %v", trial, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestPairwiseSqDistParallelIdentical(t *testing.T) {
	// 128*128*128 = 2^21 = parallelFlops: exactly at the row-blocked gate.
	// The parallel result must be bitwise identical to the naive serial loop.
	rng := rand.New(rand.NewSource(4))
	a, b := NewDense(128, 128), NewDense(128, 128)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	got := PairwiseSqDist(a, b)
	want := naivePairwiseSqDist(a, b)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("flat %d: %v != %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestPairwiseSqDistZeroDistanceDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := NewDense(10, 5)
	for i := range a.Data {
		a.Data[i] = rng.Float64()
	}
	d := PairwiseSqDist(a, a)
	for i := 0; i < a.Rows; i++ {
		if d.At(i, i) != 0 {
			t.Fatalf("d(%d,%d) = %v, want exactly 0", i, i, d.At(i, i))
		}
	}
}
