package matrix

import (
	"fmt"
	"sort"

	"graphalign/internal/parallel"
)

// CSR is a compressed sparse row matrix of float64.
type CSR struct {
	NumRows, NumCols int
	RowPtr           []int     // len NumRows+1
	ColIdx           []int     // len nnz, sorted within each row
	Val              []float64 // len nnz
}

// coo is an intermediate triple used during construction.
type coo struct {
	r, c int
	v    float64
}

// NewCSR builds a CSR matrix from coordinate triples. Duplicate (r, c)
// entries are summed.
func NewCSR(rows, cols int, rIdx, cIdx []int, vals []float64) (*CSR, error) {
	if len(rIdx) != len(cIdx) || len(rIdx) != len(vals) {
		return nil, fmt.Errorf("matrix: coordinate slices of unequal length")
	}
	entries := make([]coo, len(rIdx))
	for i := range rIdx {
		if rIdx[i] < 0 || rIdx[i] >= rows || cIdx[i] < 0 || cIdx[i] >= cols {
			return nil, fmt.Errorf("matrix: entry (%d,%d) out of %dx%d", rIdx[i], cIdx[i], rows, cols)
		}
		entries[i] = coo{rIdx[i], cIdx[i], vals[i]}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].r != entries[j].r {
			return entries[i].r < entries[j].r
		}
		return entries[i].c < entries[j].c
	})
	m := &CSR{NumRows: rows, NumCols: cols, RowPtr: make([]int, rows+1)}
	for i := 0; i < len(entries); {
		j := i
		v := 0.0
		for j < len(entries) && entries[j].r == entries[i].r && entries[j].c == entries[i].c {
			v += entries[j].v
			j++
		}
		m.ColIdx = append(m.ColIdx, entries[i].c)
		m.Val = append(m.Val, v)
		m.RowPtr[entries[i].r+1]++
		i = j
	}
	for r := 0; r < rows; r++ {
		m.RowPtr[r+1] += m.RowPtr[r]
	}
	return m, nil
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// RowRange returns the column indices and values of row r as views.
func (m *CSR) RowRange(r int) (cols []int, vals []float64) {
	lo, hi := m.RowPtr[r], m.RowPtr[r+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// MulVec returns m*x.
func (m *CSR) MulVec(x []float64) []float64 {
	if len(x) != m.NumCols {
		panic("matrix: csr mulvec shape mismatch")
	}
	out := make([]float64, m.NumRows)
	m.MulVecTo(out, x)
	return out
}

// MulVecTo computes out = m*x, reusing out (which must have length NumRows).
func (m *CSR) MulVecTo(out, x []float64) {
	for r := 0; r < m.NumRows; r++ {
		lo, hi := m.RowPtr[r], m.RowPtr[r+1]
		var s float64
		for k := lo; k < hi; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		out[r] = s
	}
}

// MulVecT returns mᵀ*x without materializing the transpose.
func (m *CSR) MulVecT(x []float64) []float64 {
	if len(x) != m.NumRows {
		panic("matrix: csr mulvecT shape mismatch")
	}
	out := make([]float64, m.NumCols)
	for r := 0; r < m.NumRows; r++ {
		xv := x[r]
		if xv == 0 {
			continue
		}
		lo, hi := m.RowPtr[r], m.RowPtr[r+1]
		for k := lo; k < hi; k++ {
			out[m.ColIdx[k]] += m.Val[k] * xv
		}
	}
	return out
}

// MulDense returns m * d as a new dense matrix (m is NumRows x NumCols,
// d is NumCols x d.Cols). Large products are row-blocked across the worker
// pool (each goroutine owns a contiguous range of output rows); the result
// is bitwise identical to the serial computation.
func (m *CSR) MulDense(d *Dense) *Dense {
	if m.NumCols != d.Rows {
		panic(fmt.Sprintf("matrix: csr muldense shape mismatch %dx%d * %dx%d", m.NumRows, m.NumCols, d.Rows, d.Cols))
	}
	out := NewDense(m.NumRows, d.Cols)
	mulRows := func(lo0, hi0 int) {
		for r := lo0; r < hi0; r++ {
			lo, hi := m.RowPtr[r], m.RowPtr[r+1]
			orow := out.Row(r)
			for k := lo; k < hi; k++ {
				v := m.Val[k]
				drow := d.Row(m.ColIdx[k])
				for j, dv := range drow {
					orow[j] += v * dv
				}
			}
		}
	}
	if work := m.NNZ() * d.Cols; work >= parallelFlops {
		parallel.Blocks(0, m.NumRows, mulRows)
	} else {
		mulRows(0, m.NumRows)
	}
	return out
}

// MulDenseT returns mᵀ * d (result NumCols x d.Cols) without materializing
// the transpose.
func (m *CSR) MulDenseT(d *Dense) *Dense {
	if m.NumRows != d.Rows {
		panic("matrix: csr muldenseT shape mismatch")
	}
	out := NewDense(m.NumCols, d.Cols)
	for r := 0; r < m.NumRows; r++ {
		lo, hi := m.RowPtr[r], m.RowPtr[r+1]
		drow := d.Row(r)
		for k := lo; k < hi; k++ {
			v := m.Val[k]
			orow := out.Row(m.ColIdx[k])
			for j, dv := range drow {
				orow[j] += v * dv
			}
		}
	}
	return out
}

// T returns the transpose as a new CSR matrix.
func (m *CSR) T() *CSR {
	rIdx := make([]int, 0, m.NNZ())
	cIdx := make([]int, 0, m.NNZ())
	vals := make([]float64, 0, m.NNZ())
	for r := 0; r < m.NumRows; r++ {
		lo, hi := m.RowPtr[r], m.RowPtr[r+1]
		for k := lo; k < hi; k++ {
			rIdx = append(rIdx, m.ColIdx[k])
			cIdx = append(cIdx, r)
			vals = append(vals, m.Val[k])
		}
	}
	t, err := NewCSR(m.NumCols, m.NumRows, rIdx, cIdx, vals)
	if err != nil {
		panic(err) // construction from a valid CSR cannot fail
	}
	return t
}

// ToDense materializes the matrix densely.
func (m *CSR) ToDense() *Dense {
	d := NewDense(m.NumRows, m.NumCols)
	for r := 0; r < m.NumRows; r++ {
		lo, hi := m.RowPtr[r], m.RowPtr[r+1]
		row := d.Row(r)
		for k := lo; k < hi; k++ {
			row[m.ColIdx[k]] = m.Val[k]
		}
	}
	return d
}

// ScaleRows multiplies row r by s[r] in place and returns m.
func (m *CSR) ScaleRows(s []float64) *CSR {
	if len(s) != m.NumRows {
		panic("matrix: scalerows length mismatch")
	}
	for r := 0; r < m.NumRows; r++ {
		lo, hi := m.RowPtr[r], m.RowPtr[r+1]
		for k := lo; k < hi; k++ {
			m.Val[k] *= s[r]
		}
	}
	return m
}

// ScaleCols multiplies column c by s[c] in place and returns m.
func (m *CSR) ScaleCols(s []float64) *CSR {
	if len(s) != m.NumCols {
		panic("matrix: scalecols length mismatch")
	}
	for k, c := range m.ColIdx {
		m.Val[k] *= s[c]
	}
	return m
}

// Clone returns a deep copy of the matrix.
func (m *CSR) Clone() *CSR {
	return &CSR{
		NumRows: m.NumRows,
		NumCols: m.NumCols,
		RowPtr:  append([]int(nil), m.RowPtr...),
		ColIdx:  append([]int(nil), m.ColIdx...),
		Val:     append([]float64(nil), m.Val...),
	}
}
