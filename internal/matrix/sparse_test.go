package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomCSR(rows, cols, nnz int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	rIdx := make([]int, nnz)
	cIdx := make([]int, nnz)
	vals := make([]float64, nnz)
	for i := 0; i < nnz; i++ {
		rIdx[i] = rng.Intn(rows)
		cIdx[i] = rng.Intn(cols)
		vals[i] = rng.NormFloat64()
	}
	m, err := NewCSR(rows, cols, rIdx, cIdx, vals)
	if err != nil {
		panic(err)
	}
	return m
}

func TestNewCSRBasics(t *testing.T) {
	m, err := NewCSR(2, 3, []int{0, 1, 0}, []int{2, 1, 2}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2 (duplicates summed)", m.NNZ())
	}
	d := m.ToDense()
	if d.At(0, 2) != 4 || d.At(1, 1) != 2 {
		t.Errorf("dense = %v", d.Data)
	}
	cols, vals := m.RowRange(0)
	if len(cols) != 1 || cols[0] != 2 || vals[0] != 4 {
		t.Errorf("RowRange = %v %v", cols, vals)
	}
}

func TestNewCSRErrors(t *testing.T) {
	if _, err := NewCSR(2, 2, []int{0}, []int{0, 1}, []float64{1, 2}); err == nil {
		t.Error("unequal slices accepted")
	}
	if _, err := NewCSR(2, 2, []int{5}, []int{0}, []float64{1}); err == nil {
		t.Error("out-of-range row accepted")
	}
}

func TestCSRMulVecMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		m := randomCSR(6, 4, 10, seed)
		x := []float64{1, -1, 2, 0.5}
		got := m.MulVec(x)
		want := m.ToDense().MulVec(x)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCSRMulVecT(t *testing.T) {
	f := func(seed int64) bool {
		m := randomCSR(5, 7, 12, seed)
		x := []float64{1, 2, 3, 4, 5}
		got := m.MulVecT(x)
		want := m.T().MulVec(x)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCSRMulDense(t *testing.T) {
	m := randomCSR(4, 5, 8, 1)
	d := randomDense(5, 3, 2)
	got := m.MulDense(d)
	want := Mul(m.ToDense(), d)
	for i := range got.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
			t.Fatal("MulDense mismatch")
		}
	}
	gotT := m.MulDenseT(randomDense(4, 2, 3))
	wantT := Mul(m.T().ToDense(), randomDense(4, 2, 3))
	for i := range gotT.Data {
		if math.Abs(gotT.Data[i]-wantT.Data[i]) > 1e-12 {
			t.Fatal("MulDenseT mismatch")
		}
	}
}

func TestCSRTransposeInvolution(t *testing.T) {
	m := randomCSR(5, 6, 10, 4)
	tt := m.T().T().ToDense()
	d := m.ToDense()
	for i := range d.Data {
		if d.Data[i] != tt.Data[i] {
			t.Fatal("CSR transpose twice should be identity")
		}
	}
}

func TestCSRScaleRowsCols(t *testing.T) {
	m, _ := NewCSR(2, 2, []int{0, 1}, []int{1, 0}, []float64{2, 3})
	m.ScaleRows([]float64{2, 3})
	d := m.ToDense()
	if d.At(0, 1) != 4 || d.At(1, 0) != 9 {
		t.Errorf("ScaleRows wrong: %v", d.Data)
	}
	m.ScaleCols([]float64{10, 100})
	d = m.ToDense()
	if d.At(0, 1) != 400 || d.At(1, 0) != 90 {
		t.Errorf("ScaleCols wrong: %v", d.Data)
	}
}

func TestCSRClone(t *testing.T) {
	m := randomCSR(3, 3, 5, 5)
	c := m.Clone()
	c.Val[0] = 999
	if m.Val[0] == 999 {
		t.Error("Clone must deep-copy values")
	}
}
