package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-10 }

func randomDense(rows, cols int, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	m := NewDense(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewDenseAndAccessors(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 5)
	m.Add(1, 2, 1)
	if m.At(1, 2) != 6 {
		t.Fatalf("At = %v, want 6", m.At(1, 2))
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 6 {
		t.Error("Row view mismatch")
	}
	row[0] = 9
	if m.At(1, 0) != 9 {
		t.Error("Row must alias storage")
	}
}

func TestDenseFromRows(t *testing.T) {
	m := DenseFromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Error("DenseFromRows filled wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("ragged rows should panic")
		}
	}()
	DenseFromRows([][]float64{{1}, {2, 3}})
}

func TestMulKnown(t *testing.T) {
	a := DenseFromRows([][]float64{{1, 2}, {3, 4}})
	b := DenseFromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("C[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulABTMatchesMulWithTranspose(t *testing.T) {
	a := randomDense(4, 6, 1)
	b := randomDense(5, 6, 2)
	got := MulABT(a, b)
	want := Mul(a, b.T())
	for i := range got.Data {
		if !almostEqual(got.Data[i], want.Data[i]) {
			t.Fatalf("MulABT differs from Mul with transpose at %d", i)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	a := randomDense(3, 5, 3)
	tt := a.T().T()
	for i := range a.Data {
		if a.Data[i] != tt.Data[i] {
			t.Fatal("transpose twice should be identity")
		}
	}
}

func TestMulVec(t *testing.T) {
	a := DenseFromRows([][]float64{{1, 0, 2}, {0, 3, 0}})
	got := a.MulVec([]float64{1, 2, 3})
	if got[0] != 7 || got[1] != 6 {
		t.Errorf("MulVec = %v", got)
	}
}

func TestScaleAddHadamard(t *testing.T) {
	a := DenseFromRows([][]float64{{1, 2}})
	b := DenseFromRows([][]float64{{3, 4}})
	a.Scale(2).AddScaled(b, 1).Hadamard(b)
	if a.At(0, 0) != (2+3)*3 || a.At(0, 1) != (4+4)*4 {
		t.Errorf("chained ops wrong: %v", a.Data)
	}
}

func TestSumsAndNorms(t *testing.T) {
	a := DenseFromRows([][]float64{{3, -4}, {0, 0}})
	if a.Sum() != -1 {
		t.Errorf("Sum = %v", a.Sum())
	}
	if a.FrobNorm() != 5 {
		t.Errorf("FrobNorm = %v", a.FrobNorm())
	}
	if a.MaxAbs() != 4 {
		t.Errorf("MaxAbs = %v", a.MaxAbs())
	}
	rs := a.RowSums()
	if rs[0] != -1 || rs[1] != 0 {
		t.Errorf("RowSums = %v", rs)
	}
	cs := a.ColSums()
	if cs[0] != 3 || cs[1] != -4 {
		t.Errorf("ColSums = %v", cs)
	}
}

func TestOuterAndAddOuterScaled(t *testing.T) {
	u := []float64{1, 2}
	v := []float64{3, 4, 5}
	o := Outer(u, v)
	if o.At(1, 2) != 10 || o.At(0, 0) != 3 {
		t.Errorf("Outer wrong: %v", o.Data)
	}
	m := NewDense(2, 3)
	m.AddOuterScaled(u, v, 2)
	if m.At(1, 1) != 16 {
		t.Errorf("AddOuterScaled wrong: %v", m.Data)
	}
}

func TestVectorHelpers(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Error("Dot wrong")
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Error("Norm2 wrong")
	}
	v := []float64{3, 4}
	if n := Normalize(v); n != 5 || !almostEqual(Norm2(v), 1) {
		t.Error("Normalize wrong")
	}
	zero := []float64{0, 0}
	if Normalize(zero) != 0 {
		t.Error("Normalize of zero vector should return 0")
	}
	y := []float64{1, 1}
	AxpyVec(y, []float64{2, 3}, 2)
	if y[0] != 5 || y[1] != 7 {
		t.Error("AxpyVec wrong")
	}
}

func TestPropertyMulAssociativeWithVector(t *testing.T) {
	// (A B) x == A (B x)
	f := func(seed int64) bool {
		a := randomDense(4, 5, seed)
		b := randomDense(5, 3, seed+1)
		x := []float64{1, -2, 0.5}
		left := Mul(a, b).MulVec(x)
		right := a.MulVec(b.MulVec(x))
		for i := range left {
			if !almostEqual(left[i], right[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestShapePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"mul":    func() { Mul(NewDense(2, 3), NewDense(2, 3)) },
		"mulvec": func() { NewDense(2, 3).MulVec([]float64{1}) },
		"dot":    func() { Dot([]float64{1}, []float64{1, 2}) },
		"outer":  func() { NewDense(2, 2).AddOuterScaled([]float64{1}, []float64{1, 2}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: shape mismatch should panic", name)
				}
			}()
			fn()
		}()
	}
}
