package matrix

import (
	"math/rand"
	"testing"
)

// naiveMul is the textbook reference the parallel kernels must match
// bitwise: row-blocking only partitions rows, it never reorders the
// per-row accumulation.
func naiveMul(a, b *Dense) *Dense {
	out := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			av := a.At(i, k)
			if av == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Add(i, j, av*b.At(k, j))
			}
		}
	}
	return out
}

// 160^3 ≈ 4.1M flops, comfortably above parallelFlops, so these products
// take the row-blocked path.
func TestMulParallelMatchesSerial(t *testing.T) {
	a := randomDense(160, 160, 1)
	b := randomDense(160, 160, 11)
	got, want := Mul(a, b), naiveMul(a, b)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("Mul differs from serial reference at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMulABTParallelMatchesSerial(t *testing.T) {
	a := randomDense(160, 160, 2)
	b := randomDense(160, 160, 22)
	got, want := MulABT(a, b), naiveMul(a, b.T())
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("MulABT differs from serial reference at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestCSRMulDenseParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n, nnz, cols = 500, 20000, 200 // nnz*cols = 4M > parallelFlops
	rIdx := make([]int, nnz)
	cIdx := make([]int, nnz)
	vals := make([]float64, nnz)
	for i := range rIdx {
		rIdx[i] = rng.Intn(n)
		cIdx[i] = rng.Intn(n)
		vals[i] = rng.NormFloat64()
	}
	m, err := NewCSR(n, n, rIdx, cIdx, vals)
	if err != nil {
		t.Fatal(err)
	}
	d := randomDense(n, cols, 33)
	got, want := m.MulDense(d), naiveMul(m.ToDense(), d)
	for i := range want.Data {
		if diff := got.Data[i] - want.Data[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("CSR.MulDense differs from dense reference at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

// Small products must stay on the inline path and still be correct.
func TestMulBelowThreshold(t *testing.T) {
	a := randomDense(7, 5, 4)
	b := randomDense(5, 9, 44)
	got, want := Mul(a, b), naiveMul(a, b)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("small Mul differs at %d", i)
		}
	}
}
