package adaptive

import (
	"math/rand"
	"testing"

	"graphalign/internal/algo"
	"graphalign/internal/algotest"
	"graphalign/internal/assign"
	"graphalign/internal/gen"
	"graphalign/internal/graph"
)

func TestProfileOf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ba := gen.BarabasiAlbert(200, 5, rng)
	ws := gen.WattsStrogatz(200, 10, 0.1, rng)
	pBA := profileOf(ba)
	pWS := profileOf(ws)
	if pBA.Skew <= pWS.Skew {
		t.Errorf("BA skew %v should exceed WS skew %v", pBA.Skew, pWS.Skew)
	}
	if pWS.Clustering <= 0 {
		t.Error("WS clustering should be positive")
	}
	if pBA.N != 200 || pBA.AvgDegree <= 0 {
		t.Errorf("profile incomplete: %+v", pBA)
	}
}

func TestSelectRegimes(t *testing.T) {
	a := New()
	cases := []struct {
		name string
		p    Profile
		want string
	}{
		{"large", Profile{N: 10000, AvgDegree: 10, Skew: 3}, "REGAL"},
		{"sparse", Profile{N: 500, AvgDegree: 2, Skew: 2}, "IsoRank"},
		{"powerlaw", Profile{N: 500, AvgDegree: 10, Skew: 12}, "S-GWL"},
		{"homogeneous", Profile{N: 500, AvgDegree: 10, Skew: 2}, "S-GWL"},
	}
	for _, c := range cases {
		got := a.Select(c.p)
		if got.Name() != c.want {
			t.Errorf("%s: dispatched to %s, want %s", c.name, got.Name(), c.want)
		}
	}
}

func TestSparseVsDenseBeta(t *testing.T) {
	a := New()
	sparse := a.Select(Profile{N: 500, AvgDegree: 6, Skew: 2})
	dense := a.Select(Profile{N: 500, AvgDegree: 50, Skew: 2})
	s1, ok1 := sparse.(interface{ Name() string })
	_, ok2 := dense.(interface{ Name() string })
	if !ok1 || !ok2 || s1.Name() != "S-GWL" {
		t.Fatal("homogeneous profiles must select S-GWL")
	}
}

func TestAdaptiveAligns(t *testing.T) {
	p := algotest.Pair(t, 80, 0, 7)
	a := New()
	acc := algotest.Accuracy(t, a, p, assign.JonkerVolgenant)
	if acc < 0.85 {
		t.Errorf("adaptive accuracy %.3f on isomorphic powerlaw instance", acc)
	}
	// PL graphs have skewed degrees: should have dispatched to S-GWL.
	if a.Chosen() != "S-GWL" {
		t.Errorf("chosen = %q, want S-GWL on a powerlaw instance", a.Chosen())
	}
}

func TestAdaptiveOnSparseGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// A long cycle: average degree 2 (sparse regime -> IsoRank).
	n := 80
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		edges = append(edges, graph.Edge{U: i, V: (i + 1) % n})
	}
	base := graph.MustNew(n, edges)
	perm := graph.RandomPermutation(n, rng)
	target, err := graph.Permute(base, perm)
	if err != nil {
		t.Fatal(err)
	}
	a := New()
	if _, err := algo.Align(a, base, target, assign.JonkerVolgenant); err != nil {
		t.Fatal(err)
	}
	if a.Chosen() != "IsoRank" {
		t.Errorf("chosen = %q, want IsoRank on a degree-2 graph", a.Chosen())
	}
}

func TestImplementsAligner(t *testing.T) {
	var _ algo.Aligner = New()
	if New().DefaultAssignment() != assign.JonkerVolgenant {
		t.Error("adaptive should default to JV")
	}
}

func TestThresholdDefaults(t *testing.T) {
	d := Thresholds{}.withDefaults()
	if d.LargeN != 4096 || d.SparseDegree != 4 || d.PowerlawSkew != 5 || d.DenseBetaDegree != 20 {
		t.Errorf("defaults wrong: %+v", d)
	}
	custom := Thresholds{LargeN: 10}.withDefaults()
	if custom.LargeN != 10 {
		t.Error("custom threshold overridden")
	}
}
