// Package adaptive implements the paper's concluding recommendation as a
// working method: "Graph density and degree distribution affect
// performance. As these are inherent graph properties, we conclude that
// future graph alignment algorithms should consider these parameters in
// pre-processing."
//
// The Adaptive aligner inspects exactly those parameters — size, average
// degree, degree-distribution skew, clustering — and dispatches to the
// study's best-suited algorithm with matching hyperparameters:
//
//   - powerlaw-skewed degrees -> GWL-family methods excel (paper §6.3),
//     S-GWL with dense beta;
//   - sparse, low-degree graphs -> IsoRank with the degree prior holds up
//     where embeddings fail (paper §6.7, Figure 16);
//   - large graphs -> REGAL, "a viable alternative if scalability is a
//     concern" (paper §7);
//   - everything else -> S-GWL with the sparse beta, "an algorithm of
//     choice on most counts" (paper §7).
package adaptive

import (
	"context"
	"math"

	"graphalign/internal/algo"
	"graphalign/internal/algo/isorank"
	"graphalign/internal/algo/regal"
	"graphalign/internal/algo/sgwl"
	"graphalign/internal/assign"
	"graphalign/internal/graph"
	"graphalign/internal/matrix"
)

// Profile summarizes the structural parameters the dispatch keys on.
type Profile struct {
	N         int
	AvgDegree float64
	// Skew is the ratio of maximum to average degree; powerlaw graphs have
	// large skew, lattices and proximity networks sit near 1.
	Skew float64
	// Clustering is the global clustering coefficient.
	Clustering float64
}

// Profiles computes the joint profile of an alignment instance (the
// pairwise maxima of both graphs' statistics, so either graph can trigger
// the relevant regime).
func Profiles(src, dst *graph.Graph) Profile {
	p1 := profileOf(src)
	p2 := profileOf(dst)
	return Profile{
		N:          maxInt(p1.N, p2.N),
		AvgDegree:  math.Max(p1.AvgDegree, p2.AvgDegree),
		Skew:       math.Max(p1.Skew, p2.Skew),
		Clustering: math.Max(p1.Clustering, p2.Clustering),
	}
}

func profileOf(g *graph.Graph) Profile {
	p := Profile{N: g.N(), AvgDegree: g.AvgDegree()}
	if p.AvgDegree > 0 {
		p.Skew = float64(g.MaxDegree()) / p.AvgDegree
	}
	p.Clustering = graph.ClusteringCoefficient(g)
	return p
}

// Thresholds tune the dispatch; the zero value means defaults.
type Thresholds struct {
	// LargeN switches to REGAL above this size (default 4096).
	LargeN int
	// SparseDegree switches to IsoRank below this average degree
	// (default 4).
	SparseDegree float64
	// PowerlawSkew marks a degree distribution as powerlaw at or above
	// this max/avg ratio (default 5).
	PowerlawSkew float64
	// DenseBetaDegree selects S-GWL's dense beta at or above this average
	// degree (default 20, following the paper's sparse/dense split).
	DenseBetaDegree float64
}

func (t Thresholds) withDefaults() Thresholds {
	if t.LargeN == 0 {
		t.LargeN = 4096
	}
	if t.SparseDegree == 0 {
		t.SparseDegree = 4
	}
	if t.PowerlawSkew == 0 {
		t.PowerlawSkew = 5
	}
	if t.DenseBetaDegree == 0 {
		t.DenseBetaDegree = 20
	}
	return t
}

// Adaptive dispatches to the study's best-suited algorithm based on the
// input graphs' structural profile.
type Adaptive struct {
	Thresholds Thresholds
	// chosen records the last dispatch decision for inspection.
	chosen string
}

// New returns an Adaptive aligner with default thresholds.
func New() *Adaptive {
	return &Adaptive{}
}

// Name implements algo.Aligner.
func (a *Adaptive) Name() string { return "Adaptive" }

// DefaultAssignment implements algo.Aligner; JV is the study's common
// assignment stage.
func (a *Adaptive) DefaultAssignment() assign.Method { return assign.JonkerVolgenant }

// Chosen reports which algorithm the last Similarity call dispatched to
// ("" before the first call).
func (a *Adaptive) Chosen() string { return a.chosen }

// Select returns the aligner the profile dispatches to, without running it.
func (a *Adaptive) Select(p Profile) algo.Aligner {
	t := a.Thresholds.withDefaults()
	switch {
	case p.N >= t.LargeN:
		// Scalability regime: REGAL (paper §7).
		return regal.New()
	case p.AvgDegree < t.SparseDegree:
		// Sparse regime: IsoRank's weighted prior aligns small-degree
		// nodes where embeddings blur (paper Figure 16).
		return isorank.New()
	case p.Skew >= t.PowerlawSkew:
		// Powerlaw regime: the GW family leads (paper §6.3); dense beta.
		s := sgwl.New()
		s.Beta = 0.1
		return s
	default:
		// Homogeneous mid-size regime: S-GWL with the sparse beta.
		if p.AvgDegree >= t.DenseBetaDegree {
			return sgwl.New()
		}
		return sgwl.NewSparse()
	}
}

// Similarity implements algo.Aligner by profiling and dispatching.
func (a *Adaptive) Similarity(src, dst *graph.Graph) (*matrix.Dense, error) {
	return a.SimilarityCtx(context.Background(), src, dst)
}

// SimilarityCtx implements algo.ContextAligner: the context reaches whichever
// algorithm the profile dispatches to.
func (a *Adaptive) SimilarityCtx(ctx context.Context, src, dst *graph.Graph) (*matrix.Dense, error) {
	inner := a.Select(Profiles(src, dst))
	a.chosen = inner.Name()
	return algo.Similarity(ctx, inner, src, dst)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
