package cache

import (
	"context"
	"fmt"
	"math/rand"

	"graphalign/internal/graph"
	"graphalign/internal/linalg"
	"graphalign/internal/matrix"
)

// This file holds the shared per-graph artifacts the aligners draw from the
// cache. Every helper is nil-safe in c (nil computes directly, exactly what
// the aligner did before the cache existed) and returns values that must be
// treated as READ-ONLY by consumers: they are shared across goroutines and
// algorithms. All compute closures are pure functions of (graph, params),
// which is what makes cached and uncached runs byte-identical.

// DenseEigenCutoff is the node count up to which the Laplacian
// eigendecomposition uses the dense symmetric solver for robustness; larger
// graphs use Lanczos. It matches the policy GRASP shipped with.
const DenseEigenCutoff = 400

// CSRBytes estimates the payload of a CSR matrix.
func CSRBytes(m *matrix.CSR) int64 {
	return int64(8 * (len(m.RowPtr) + len(m.ColIdx) + len(m.Val)))
}

// DenseBytes estimates the payload of a dense matrix.
func DenseBytes(m *matrix.Dense) int64 { return int64(8 * len(m.Data)) }

// Degrees returns the degree vector of g, cached under the graph's
// fingerprint. The returned slice is shared: do not modify.
func Degrees(c *Cache, g *graph.Graph) []int {
	v, _ := c.GetOrCompute(context.Background(), GraphKey(g)+"/degrees", func() (any, int64, error) {
		d := g.Degrees()
		return d, int64(8 * len(d)), nil
	})
	return v.([]int)
}

// Adjacency returns the CSR adjacency matrix of g, cached under the graph's
// fingerprint. The returned matrix is shared: do not modify.
func Adjacency(c *Cache, g *graph.Graph) *matrix.CSR {
	v, _ := c.GetOrCompute(context.Background(), GraphKey(g)+"/adj", func() (any, int64, error) {
		m := graph.Adjacency(g)
		return m, CSRBytes(m), nil
	})
	return v.(*matrix.CSR)
}

// RowNormalizedAdjacency returns the random-walk transition matrix D^-1 A of
// g, cached under the graph's fingerprint. Shared: do not modify.
func RowNormalizedAdjacency(c *Cache, g *graph.Graph) *matrix.CSR {
	v, _ := c.GetOrCompute(context.Background(), GraphKey(g)+"/rwadj", func() (any, int64, error) {
		m := graph.RowNormalizedAdjacency(g)
		return m, CSRBytes(m), nil
	})
	return v.(*matrix.CSR)
}

// NormalizedLaplacian returns L = I - D^-1/2 A D^-1/2 of g in CSR form,
// cached under the graph's fingerprint. Shared: do not modify.
func NormalizedLaplacian(c *Cache, g *graph.Graph) *matrix.CSR {
	v, _ := c.GetOrCompute(context.Background(), GraphKey(g)+"/nlap", func() (any, int64, error) {
		m := graph.NormalizedLaplacian(g)
		return m, CSRBytes(m), nil
	})
	return v.(*matrix.CSR)
}

// eigs bundles one cached eigendecomposition.
type eigs struct {
	vals []float64
	vecs *matrix.Dense
}

// LaplacianEigs returns the k smallest eigenpairs of the normalized
// Laplacian of g, cached under (fingerprint, k, seed): the dense symmetric
// solver up to DenseEigenCutoff nodes, Lanczos with 12k+100 steps beyond.
// The Lanczos starting vector is drawn from a fresh RNG seeded with seed, so
// the result is a pure function of (g, k, seed) — the invariant the cache
// needs, and the reason two graphs decomposed by the same aligner no longer
// share one RNG stream. Returned slices/matrices are shared: do not modify.
func LaplacianEigs(ctx context.Context, c *Cache, g *graph.Graph, k int, seed int64) ([]float64, *matrix.Dense, error) {
	key := fmt.Sprintf("%s/lapeigs/k%d/s%d", GraphKey(g), k, seed)
	v, err := c.GetOrCompute(ctx, key, func() (any, int64, error) {
		vals, vecs, err := computeLaplacianEigs(ctx, c, g, k, seed)
		if err != nil {
			return nil, 0, err
		}
		return eigs{vals, vecs}, int64(8*len(vals)) + DenseBytes(vecs), nil
	})
	if err != nil {
		return nil, nil, err
	}
	e := v.(eigs)
	return e.vals, e.vecs, nil
}

func computeLaplacianEigs(ctx context.Context, c *Cache, g *graph.Graph, k int, seed int64) ([]float64, *matrix.Dense, error) {
	lap := NormalizedLaplacian(c, g)
	if g.N() <= DenseEigenCutoff {
		vals, vecs, err := linalg.SymEigenCtx(ctx, lap.ToDense())
		if err != nil {
			return nil, nil, err
		}
		tv, tm := linalg.TruncateEigenpairs(vals, vecs, k)
		return tv, tm, nil
	}
	rng := rand.New(rand.NewSource(seed))
	iters := 12*k + 100
	return linalg.LanczosSmallestCtx(ctx, linalg.CSROp(lap), k, iters, rng)
}
