package cache

import (
	"context"
	"math"
	"reflect"
	"testing"

	"graphalign/internal/graph"
	"graphalign/internal/linalg"
)

// twoComponentGraph builds two disjoint cliques of sizes a and b.
func twoComponentGraph(a, b int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < a; i++ {
		for j := i + 1; j < a; j++ {
			edges = append(edges, graph.Edge{U: i, V: j})
		}
	}
	for i := 0; i < b; i++ {
		for j := i + 1; j < b; j++ {
			edges = append(edges, graph.Edge{U: a + i, V: a + j})
		}
	}
	return graph.MustNew(a+b, edges)
}

func TestComponentKeysSurviveEditsElsewhere(t *testing.T) {
	c := New(0)
	g := twoComponentGraph(5, 4)
	v1 := Components(c, g)
	if v1.Count != 2 {
		t.Fatalf("Count = %d, want 2", v1.Count)
	}
	// Edit inside component 1 only (remove one clique edge).
	g2, err := graph.ApplyEdits(g, []graph.Edit{{Op: graph.EditRemove, U: 5, V: 6}})
	if err != nil {
		t.Fatal(err)
	}
	v2 := Components(c, g2)
	if v2.Keys[0] != v1.Keys[0] {
		t.Errorf("untouched component key changed: %q -> %q", v1.Keys[0], v2.Keys[0])
	}
	if v2.Keys[1] == v1.Keys[1] {
		t.Errorf("edited component key did not change: %q", v1.Keys[1])
	}
}

func TestDegreesDeltaMatchesAndReuses(t *testing.T) {
	c := New(0)
	g := twoComponentGraph(6, 5)
	if got := DegreesDelta(c, g); !reflect.DeepEqual(got, g.Degrees()) {
		t.Fatalf("DegreesDelta = %v, want %v", got, g.Degrees())
	}
	// Edit the second component; the first component's degree artifact must
	// be a cache hit (probed via Has on its key).
	g2, err := graph.ApplyEdits(g, []graph.Edit{{Op: graph.EditRemove, U: 6, V: 7}})
	if err != nil {
		t.Fatal(err)
	}
	view := Components(c, g2)
	if !c.Has(view.Keys[0] + "/degrees") {
		t.Error("untouched component's degrees not reusable after edit elsewhere")
	}
	if c.Has(view.Keys[1] + "/degrees") {
		t.Error("edited component's degrees unexpectedly cached already")
	}
	if got := DegreesDelta(c, g2); !reflect.DeepEqual(got, g2.Degrees()) {
		t.Fatalf("post-edit DegreesDelta = %v, want %v", got, g2.Degrees())
	}
	// Nil cache degrades to a direct computation.
	if got := DegreesDelta(nil, g); !reflect.DeepEqual(got, g.Degrees()) {
		t.Fatal("nil-cache DegreesDelta differs from g.Degrees()")
	}
}

// The merged per-component eigendecomposition must carry the same spectrum as
// the monolithic one and return genuine eigenpairs of the full normalized
// Laplacian.
func TestLaplacianEigsDeltaMatchesMonolithic(t *testing.T) {
	c := New(0)
	g := twoComponentGraph(7, 6)
	k := 5
	ctx := context.Background()
	dvals, dvecs, err := LaplacianEigsDelta(ctx, c, g, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	mvals, _, err := LaplacianEigs(ctx, New(0), g, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(dvals) != k {
		t.Fatalf("got %d eigenvalues, want %d", len(dvals), k)
	}
	for i := range dvals {
		if math.Abs(dvals[i]-mvals[i]) > 1e-8 {
			t.Errorf("eigenvalue %d: delta %v vs monolithic %v", i, dvals[i], mvals[i])
		}
		if i > 0 && dvals[i] < dvals[i-1] {
			t.Errorf("eigenvalues not ascending at %d", i)
		}
	}
	// Residual check: L v = λ v for each merged pair.
	lap := graph.NormalizedLaplacian(g)
	op := linalg.CSROp(lap)
	n := g.N()
	x := make([]float64, n)
	y := make([]float64, n)
	for col := 0; col < k; col++ {
		for i := 0; i < n; i++ {
			x[i] = dvecs.At(i, col)
		}
		op.Apply(y, x)
		for i := 0; i < n; i++ {
			if r := math.Abs(y[i] - dvals[col]*x[i]); r > 1e-6 {
				t.Fatalf("eigenpair %d residual %v at node %d", col, r, i)
			}
		}
	}
}

// A connected graph must share the monolithic key, keeping delta and plain
// paths bitwise-identical there.
func TestLaplacianEigsDeltaConnectedDelegates(t *testing.T) {
	g := graph.MustNew(5, []graph.Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	c := New(0)
	ctx := context.Background()
	dv, dvec, err := LaplacianEigsDelta(ctx, c, g, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	mv, mvec, err := LaplacianEigs(ctx, c, g, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dv, mv) || !reflect.DeepEqual(dvec.Data, mvec.Data) {
		t.Fatal("connected-graph delta path is not the monolithic artifact")
	}
}

func TestHas(t *testing.T) {
	c := New(0)
	if c.Has("nope") {
		t.Error("empty cache claims a key")
	}
	if _, err := c.GetOrCompute(context.Background(), "k", func() (any, int64, error) { return 1, 8, nil }); err != nil {
		t.Fatal(err)
	}
	if !c.Has("k") {
		t.Error("finished entry not reported by Has")
	}
	var nilCache *Cache
	if nilCache.Has("k") {
		t.Error("nil cache claims a key")
	}
}
