package cache

import (
	"fmt"

	"graphalign/internal/graph"
)

// fnv-1a constants, plus a second offset basis for the independent second
// hash lane (Fingerprint concatenates two 64-bit lanes so that a collision
// requires both to collide, making accidental artifact mixups between two
// distinct graphs astronomically unlikely).
const (
	fnvOffset  = 14695981039346656037
	fnvOffset2 = fnvOffset ^ 0x9e3779b97f4a7c15
	fnvPrime   = 1099511628211
)

// Fingerprint returns a 128-bit structural hash of g as two 64-bit lanes,
// covering the node count and the full sorted adjacency structure. Equal
// graphs (same node ids, same edges) always produce equal fingerprints.
func Fingerprint(g *graph.Graph) (hi, lo uint64) {
	h1 := uint64(fnvOffset)
	h2 := uint64(fnvOffset2)
	mix := func(x uint64) {
		for s := 0; s < 64; s += 8 {
			b := (x >> s) & 0xff
			h1 = (h1 ^ b) * fnvPrime
			h2 = (h2 ^ (b + 0x9e)) * fnvPrime
		}
	}
	n := g.N()
	mix(uint64(n))
	for u := 0; u < n; u++ {
		row := g.Neighbors(u)
		mix(uint64(len(row)))
		for _, v := range row {
			mix(uint64(v))
		}
	}
	return h1, h2
}

// GraphKey returns the cache key prefix identifying one graph: its
// fingerprint plus the (n, m) dimensions spelled out for debuggability.
func GraphKey(g *graph.Graph) string {
	hi, lo := Fingerprint(g)
	return fmt.Sprintf("g%016x%016x/n%d/m%d", hi, lo, g.N(), g.M())
}

// PairKey returns the cache key prefix identifying an ordered (src, dst)
// graph pair, for artifacts that depend on both sides (degree priors, whole
// similarity matrices).
func PairKey(src, dst *graph.Graph) string {
	return GraphKey(src) + "|" + GraphKey(dst)
}
