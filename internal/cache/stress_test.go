package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestComputePanicDoesNotPoisonKey is the regression test for the poisoned
// single-flight entry: before the fix, a compute that panicked left its
// in-flight entry in the map with ready never closed, so every later
// GetOrCompute of the same key blocked forever. The panic must still reach
// the caller (the serve layer isolates panics per job), but the key must
// recover. Pre-fix, this test times out on the second call.
func TestComputePanicDoesNotPoisonKey(t *testing.T) {
	c := New(0)
	panicked := func() (p any) {
		defer func() { p = recover() }()
		c.GetOrCompute(context.Background(), "k", func() (any, int64, error) {
			panic("aligner blew up")
		})
		return nil
	}()
	if panicked == nil {
		t.Fatal("panic must propagate to the caller")
	}

	done := make(chan any, 1)
	go func() {
		v, err := c.GetOrCompute(context.Background(), "k", func() (any, int64, error) {
			return 42, 8, nil
		})
		if err != nil {
			done <- err
			return
		}
		done <- v
	}()
	select {
	case v := <-done:
		if got, ok := v.(int); !ok || got != 42 {
			t.Fatalf("recompute after panic returned %v", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("key poisoned: GetOrCompute after a panicking compute never returned")
	}
	if c.Len() != 1 || c.Bytes() != 8 {
		t.Fatalf("after recovery: len=%d bytes=%d, want 1/8", c.Len(), c.Bytes())
	}
}

// TestComputePanicWakesWaiters pins the multi-tenant variant: waiters queued
// behind a leader whose compute panics must be woken to retry (and succeed)
// rather than block forever.
func TestComputePanicWakesWaiters(t *testing.T) {
	c := New(0)
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	var recomputes atomic.Int64

	go func() {
		defer func() { recover() }()
		c.GetOrCompute(context.Background(), "k", func() (any, int64, error) {
			close(leaderIn)
			<-release
			panic("leader died")
		})
	}()
	<-leaderIn

	const waiters = 4
	results := make(chan int, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.GetOrCompute(context.Background(), "k", func() (any, int64, error) {
				recomputes.Add(1)
				return 7, 1, nil
			})
			if err != nil {
				return
			}
			results <- v.(int)
		}()
	}
	// Give the waiters time to park on the in-flight entry, then kill the
	// leader. Timing here only shapes interleavings; correctness must hold
	// for any of them.
	time.Sleep(50 * time.Millisecond)
	close(release)

	waited := make(chan struct{})
	go func() { wg.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(5 * time.Second):
		t.Fatal("waiters never woke after the leader's compute panicked")
	}
	close(results)
	n := 0
	for v := range results {
		n++
		if v != 7 {
			t.Fatalf("waiter got %d, want 7", v)
		}
	}
	if n != waiters {
		t.Fatalf("%d of %d waiters recovered", n, waiters)
	}
	if got := recomputes.Load(); got < 1 {
		t.Fatalf("recomputes = %d, want >= 1", got)
	}
}

// TestStressEvictionFailuresPanics hammers one small cache from many
// goroutines with a key set larger than the budget (constant eviction racing
// single-flight), deterministic compute failures, and occasional compute
// panics. Run under -race it checks the locking; afterwards it audits the
// internal accounting invariants the multi-tenant serve layer depends on:
// bytes equals the sum over resident entries, the budget holds, the map and
// the LRU list agree, and no entry is left permanently in flight.
func TestStressEvictionFailuresPanics(t *testing.T) {
	const (
		goroutines = 8
		iters      = 400
		keys       = 16
		entryBytes = 64
	)
	// Budget fits only 4 of the 16 keys: every insert races eviction.
	c := New(4 * entryBytes)
	var ops, failures, panics atomic.Int64

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("k%d", (g*31+i)%keys)
				seq := g*iters + i
				func() {
					defer func() {
						if recover() != nil {
							panics.Add(1)
						}
					}()
					v, err := c.GetOrCompute(context.Background(), key, func() (any, int64, error) {
						switch {
						case seq%13 == 0:
							panic("compute panic")
						case seq%7 == 0:
							return nil, 0, errors.New("compute failure")
						}
						return key, entryBytes, nil
					})
					ops.Add(1)
					if err != nil {
						failures.Add(1)
						return
					}
					if v.(string) != key {
						t.Errorf("key %s returned value %v", key, v)
					}
				}()
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("stress run deadlocked")
	}

	// Accounting audit (single-threaded now; touch internals directly).
	c.mu.Lock()
	defer c.mu.Unlock()
	var sum int64
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		sum += e.bytes
		if e.elem != el {
			t.Errorf("entry %s has stale LRU backlink", e.key)
		}
		select {
		case <-e.ready:
		default:
			t.Errorf("entry %s resident in LRU but still in flight", e.key)
		}
		if me, ok := c.entries[e.key]; !ok || me != e {
			t.Errorf("entry %s in LRU but not in map", e.key)
		}
	}
	if sum != c.bytes {
		t.Errorf("bytes accounting drifted: tracked %d, sum of entries %d", c.bytes, sum)
	}
	if c.bytes < 0 || c.bytes > c.budget {
		t.Errorf("bytes %d outside [0, budget %d]", c.bytes, c.budget)
	}
	for key, e := range c.entries {
		select {
		case <-e.ready:
		default:
			t.Errorf("map entry %s left permanently in flight", key)
		}
		if e.elem == nil {
			t.Errorf("finished map entry %s not resident in LRU", key)
		}
	}
	if c.lru.Len() != len(c.entries) {
		t.Errorf("LRU holds %d entries, map holds %d", c.lru.Len(), len(c.entries))
	}
	t.Logf("ops=%d failures=%d panics=%d resident=%d bytes=%d",
		ops.Load(), failures.Load(), panics.Load(), c.lru.Len(), c.bytes)
}
