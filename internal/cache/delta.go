package cache

import (
	"context"
	"fmt"
	"sort"

	"graphalign/internal/graph"
	"graphalign/internal/matrix"
)

// This file holds the delta-tolerant layer of the cache: artifacts keyed per
// connected component instead of per graph. A whole-graph fingerprint changes
// on any edit, so a one-edge delta invalidates every whole-graph artifact;
// component keys hash only the component's own nodes (by their global ids)
// and induced structure, so an edit invalidates exactly the components it
// touches and everything else is a cache hit on the next request — the reuse
// the incremental alignment mode counts on for evolving-graph workloads.

// Has reports whether key currently holds a finished, successful entry,
// without computing anything or touching LRU order. The incremental pipeline
// uses it to count component-level reuse before recomputation.
func (c *Cache) Has(key string) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return false
	}
	select {
	case <-e.ready:
		return !e.failed
	default:
		return false
	}
}

// ComponentView is the cached connected-component decomposition of a graph:
// labels, per-component node lists, and per-component cache key prefixes.
// Shared and read-only, like every cached artifact.
type ComponentView struct {
	// Labels[u] is the component id of node u, in [0, Count).
	Labels []int
	Count  int
	// Nodes[c] lists component c's nodes in ascending global id order.
	Nodes [][]int
	// Keys[c] is the cache key prefix of component c, derived from a
	// fingerprint over the component's global node ids and induced edges —
	// independent of the rest of the graph, which is what lets artifacts
	// survive edits elsewhere.
	Keys []string
}

// Components returns the component decomposition of g, cached under the
// graph's own fingerprint (the decomposition itself is invalidated by any
// edit; it is the per-component keys it yields that survive).
func Components(c *Cache, g *graph.Graph) *ComponentView {
	v, _ := c.GetOrCompute(context.Background(), GraphKey(g)+"/components", func() (any, int64, error) {
		view := computeComponents(g)
		return view, int64(8 * (2*len(view.Labels) + 4*view.Count)), nil
	})
	return v.(*ComponentView)
}

func computeComponents(g *graph.Graph) *ComponentView {
	labels, k := graph.ConnectedComponents(g)
	view := &ComponentView{Labels: labels, Count: k,
		Nodes: make([][]int, k), Keys: make([]string, k)}
	for u, l := range labels {
		view.Nodes[l] = append(view.Nodes[l], u) // u ascending => lists sorted
	}
	for ci, nodes := range view.Nodes {
		hi, lo := componentFingerprint(g, nodes)
		edges := 0
		for _, u := range nodes {
			edges += len(g.Neighbors(u))
		}
		view.Keys[ci] = fmt.Sprintf("c%016x%016x/n%d/m%d", hi, lo, len(nodes), edges/2)
	}
	return view
}

// componentFingerprint is Fingerprint restricted to one component: it hashes
// the component's global node ids and their (all-internal) adjacency lists,
// so it is a pure function of the component and equal across any two graphs
// sharing that component unchanged.
func componentFingerprint(g *graph.Graph, nodes []int) (hi, lo uint64) {
	h1 := uint64(fnvOffset)
	h2 := uint64(fnvOffset2)
	mix := func(x uint64) {
		for s := 0; s < 64; s += 8 {
			b := (x >> s) & 0xff
			h1 = (h1 ^ b) * fnvPrime
			h2 = (h2 ^ (b + 0x9e)) * fnvPrime
		}
	}
	mix(uint64(len(nodes)))
	for _, u := range nodes {
		row := g.Neighbors(u)
		mix(uint64(u))
		mix(uint64(len(row)))
		for _, v := range row {
			mix(uint64(v))
		}
	}
	return h1, h2
}

// DegreesDelta returns the degree vector of g assembled from per-component
// cached pieces: components untouched by recent edits are cache hits even
// though the whole-graph fingerprint changed. The result equals g.Degrees()
// exactly. The returned slice is freshly assembled and owned by the caller.
func DegreesDelta(c *Cache, g *graph.Graph) []int {
	if c == nil {
		return g.Degrees()
	}
	view := Components(c, g)
	deg := make([]int, g.N())
	for ci, nodes := range view.Nodes {
		nodes := nodes
		v, _ := c.GetOrCompute(context.Background(), view.Keys[ci]+"/degrees", func() (any, int64, error) {
			d := make([]int, len(nodes))
			for idx, u := range nodes {
				d[idx] = len(g.Neighbors(u))
			}
			return d, int64(8 * len(d)), nil
		})
		for idx, u := range nodes {
			deg[u] = v.([]int)[idx]
		}
	}
	return deg
}

// LaplacianEigsDelta returns the k smallest eigenpairs of the normalized
// Laplacian of g, computed and cached per connected component. The normalized
// Laplacian is block-diagonal across components, so the spectrum of the whole
// is the multiset union of the component spectra; the k globally smallest
// eigenvalues are merged from per-component decompositions and their
// eigenvectors scattered back to global node rows (zero outside their
// component). A connected graph delegates to LaplacianEigs (same key, shared
// with the non-delta path).
//
// Unlike the monolithic path this is not bitwise-stable against it —
// eigenvectors of a component are computed in the component's own index space
// — but it is deterministic (ties merge by component id then column) and
// mathematically the same decomposition.
func LaplacianEigsDelta(ctx context.Context, c *Cache, g *graph.Graph, k int, seed int64) ([]float64, *matrix.Dense, error) {
	if c == nil {
		return LaplacianEigs(ctx, nil, g, k, seed)
	}
	view := Components(c, g)
	if view.Count <= 1 {
		return LaplacianEigs(ctx, c, g, k, seed)
	}
	type compEigs struct {
		nodes []int
		vals  []float64
		vecs  *matrix.Dense
	}
	parts := make([]compEigs, view.Count)
	for ci, nodes := range view.Nodes {
		nodes := nodes
		kc := k
		if kc > len(nodes) {
			kc = len(nodes)
		}
		key := fmt.Sprintf("%s/lapeigs/k%d/s%d", view.Keys[ci], kc, seed)
		v, err := c.GetOrCompute(ctx, key, func() (any, int64, error) {
			sub, _ := graph.InducedSubgraph(g, nodes)
			vals, vecs, err := computeLaplacianEigs(ctx, c, sub, kc, seed)
			if err != nil {
				return nil, 0, err
			}
			return eigs{vals, vecs}, int64(8*len(vals)) + DenseBytes(vecs), nil
		})
		if err != nil {
			return nil, nil, err
		}
		e := v.(eigs)
		parts[ci] = compEigs{nodes: nodes, vals: e.vals, vecs: e.vecs}
	}
	// Merge the k smallest eigenvalues across components, deterministically.
	type slot struct {
		val  float64
		comp int
		col  int
	}
	var slots []slot
	for ci, p := range parts {
		for col, val := range p.vals {
			slots = append(slots, slot{val, ci, col})
		}
	}
	sort.Slice(slots, func(i, j int) bool {
		if slots[i].val != slots[j].val {
			return slots[i].val < slots[j].val
		}
		if slots[i].comp != slots[j].comp {
			return slots[i].comp < slots[j].comp
		}
		return slots[i].col < slots[j].col
	})
	if k > len(slots) {
		k = len(slots)
	}
	vals := make([]float64, k)
	vecs := matrix.NewDense(g.N(), k)
	for out, s := range slots[:k] {
		vals[out] = s.val
		p := parts[s.comp]
		for idx, u := range p.nodes {
			vecs.Set(u, out, p.vecs.At(idx, s.col))
		}
	}
	return vals, vecs, nil
}
