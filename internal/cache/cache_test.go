package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"graphalign/internal/graph"
	"graphalign/internal/obsv"
)

func TestNilCacheComputesDirectly(t *testing.T) {
	var c *Cache
	v, err := c.GetOrCompute(context.Background(), "k", func() (any, int64, error) {
		return 7, 8, nil
	})
	if err != nil || v.(int) != 7 {
		t.Fatalf("nil cache: got %v, %v", v, err)
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatal("nil cache must report empty")
	}
}

func TestHitMissAndCounters(t *testing.T) {
	reg := obsv.NewRegistry()
	c := New(0).SetRegistry(reg)
	calls := 0
	get := func(key string) int {
		v, err := c.GetOrCompute(context.Background(), key, func() (any, int64, error) {
			calls++
			return calls, 8, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v.(int)
	}
	if get("a") != 1 || get("a") != 1 || get("b") != 2 || get("a") != 1 {
		t.Fatalf("memoization broken after %d calls", calls)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2", calls)
	}
	if c.Len() != 2 || c.Bytes() != 16 {
		t.Fatalf("len=%d bytes=%d, want 2/16", c.Len(), c.Bytes())
	}
	if h := reg.Counter("cache_hits_total").Value(); h != 2 {
		t.Errorf("hits counter = %v, want 2", h)
	}
	if m := reg.Counter("cache_misses_total").Value(); m != 2 {
		t.Errorf("misses counter = %v, want 2", m)
	}
}

func TestLRUEviction(t *testing.T) {
	reg := obsv.NewRegistry()
	c := New(30).SetRegistry(reg) // holds three 10-byte entries
	get := func(key string) {
		if _, err := c.GetOrCompute(context.Background(), key, func() (any, int64, error) {
			return key, 10, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	get("a")
	get("b")
	get("c")
	get("a") // refresh a: LRU order now b, c, a
	get("d") // evicts b
	if c.Len() != 3 {
		t.Fatalf("len=%d, want 3", c.Len())
	}
	misses := reg.Counter("cache_misses_total").Value()
	get("b") // must recompute
	if reg.Counter("cache_misses_total").Value() != misses+1 {
		t.Error("evicted entry was still served")
	}
	// a survived the b eviction (it was refreshed).
	hits := reg.Counter("cache_hits_total").Value()
	get("a")
	if reg.Counter("cache_hits_total").Value() != hits+1 {
		t.Error("refreshed entry was evicted out of LRU order")
	}
	if ev := reg.Counter("cache_evictions_total").Value(); ev < 1 {
		t.Errorf("evictions counter = %v, want >= 1", ev)
	}
	if c.Bytes() > 30 {
		t.Errorf("bytes=%d exceeds budget 30", c.Bytes())
	}
}

func TestOversizedEntryStillReturned(t *testing.T) {
	c := New(5)
	v, err := c.GetOrCompute(context.Background(), "big", func() (any, int64, error) {
		return "value", 100, nil
	})
	if err != nil || v.(string) != "value" {
		t.Fatalf("oversized entry: %v, %v", v, err)
	}
	if c.Bytes() > 5 {
		t.Errorf("bytes=%d exceeds budget after oversized insert", c.Bytes())
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New(0)
	boom := errors.New("boom")
	calls := 0
	compute := func() (any, int64, error) {
		calls++
		if calls == 1 {
			return nil, 0, boom
		}
		return "ok", 2, nil
	}
	if _, err := c.GetOrCompute(context.Background(), "k", compute); !errors.Is(err, boom) {
		t.Fatalf("first call: %v, want boom", err)
	}
	v, err := c.GetOrCompute(context.Background(), "k", compute)
	if err != nil || v.(string) != "ok" {
		t.Fatalf("second call must recompute: %v, %v", v, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2", calls)
	}
}

// TestSingleFlight checks that concurrent callers of one missing key run the
// compute exactly once and all receive its value.
func TestSingleFlight(t *testing.T) {
	c := New(0)
	var calls atomic.Int64
	release := make(chan struct{})
	const workers = 16
	results := make([]any, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v, err := c.GetOrCompute(context.Background(), "k", func() (any, int64, error) {
				calls.Add(1)
				<-release // hold every sibling in the wait path
				return "shared", 6, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[w] = v
		}(w)
	}
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	for w, v := range results {
		if v != "shared" {
			t.Fatalf("worker %d got %v", w, v)
		}
	}
}

// TestSingleFlightLeaderFails checks that a failing leader hands the
// computation to a waiter instead of caching the error.
func TestSingleFlightLeaderFails(t *testing.T) {
	c := New(0)
	var calls atomic.Int64
	boom := errors.New("boom")
	const workers = 8
	errsCh := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.GetOrCompute(context.Background(), "k", func() (any, int64, error) {
				if calls.Add(1) == 1 {
					return nil, 0, boom
				}
				return "ok", 2, nil
			})
			errsCh <- err
		}()
	}
	wg.Wait()
	close(errsCh)
	var failures int
	for err := range errsCh {
		if err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("unexpected error: %v", err)
			}
			failures++
		}
	}
	// Exactly the first leader observes the error; everyone else retries
	// into the recomputed success.
	if failures != 1 {
		t.Fatalf("%d callers saw the error, want 1", failures)
	}
}

func TestWaiterContextCancellation(t *testing.T) {
	c := New(0)
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, _ = c.GetOrCompute(context.Background(), "k", func() (any, int64, error) {
			close(started)
			<-release
			return "v", 1, nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.GetOrCompute(ctx, "k", func() (any, int64, error) {
		t.Error("waiter must not compute")
		return nil, 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: %v, want context.Canceled", err)
	}
	close(release)
}

func TestConcurrentMixedKeys(t *testing.T) {
	c := New(200)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%13)
				v, err := c.GetOrCompute(context.Background(), key, func() (any, int64, error) {
					return key, 16, nil
				})
				if err != nil || v.(string) != key {
					t.Errorf("key %s: %v, %v", key, v, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Bytes() > 200 {
		t.Errorf("bytes=%d exceeds budget", c.Bytes())
	}
}

func TestFingerprintDistinguishesGraphs(t *testing.T) {
	g1 := graph.MustNew(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	g2 := graph.MustNew(3, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}})
	g3 := graph.MustNew(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	h1a, l1a := Fingerprint(g1)
	h2, l2 := Fingerprint(g2)
	h3, l3 := Fingerprint(g3)
	if h1a == h2 && l1a == l2 {
		t.Error("distinct graphs share a fingerprint")
	}
	if h1a != h3 || l1a != l3 {
		t.Error("equal graphs must share a fingerprint")
	}
	if GraphKey(g1) == GraphKey(g2) {
		t.Error("distinct graphs share a key")
	}
	if GraphKey(g1) != GraphKey(g3) {
		t.Error("equal graphs must share a key")
	}
	if PairKey(g1, g2) == PairKey(g2, g1) {
		t.Error("PairKey must be ordered")
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"123", 123, true},
		{"1KB", 1000, true},
		{"1KiB", 1024, true},
		{"64M", 64 << 20, true},
		{"64MB", 64 * 1000 * 1000, true},
		{"512MiB", 512 << 20, true},
		{"1G", 1 << 30, true},
		{"2GiB", 2 << 30, true},
		{" 10 kib ", 10 << 10, true},
		{"100B", 100, true},
		{"0", 0, true},
		{"", 0, false},
		{"-5", 0, false},
		{"12XB", 0, false},
		{"MB", 0, false},
	}
	for _, tc := range cases {
		got, err := ParseBytes(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParseBytes(%q) = %d, %v; want %d", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseBytes(%q) succeeded with %d, want error", tc.in, got)
		}
	}
}

func TestArtifactHelpersNilSafe(t *testing.T) {
	g := graph.MustNew(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	if d := Degrees(nil, g); len(d) != 4 || d[1] != 2 {
		t.Errorf("Degrees(nil): %v", d)
	}
	if m := Adjacency(nil, g); m.NumRows != 4 {
		t.Error("Adjacency(nil) wrong shape")
	}
	if m := RowNormalizedAdjacency(nil, g); m.NumRows != 4 {
		t.Error("RowNormalizedAdjacency(nil) wrong shape")
	}
	if m := NormalizedLaplacian(nil, g); m.NumRows != 4 {
		t.Error("NormalizedLaplacian(nil) wrong shape")
	}
	vals, vecs, err := LaplacianEigs(context.Background(), nil, g, 2, 1)
	if err != nil || len(vals) != 2 || vecs.Rows != 4 || vecs.Cols != 2 {
		t.Errorf("LaplacianEigs(nil): %v %v %v", vals, vecs, err)
	}
}

// TestArtifactsIdenticalCachedAndUncached is the package-level byte-identity
// check: every artifact drawn through a cache equals the directly computed
// one exactly.
func TestArtifactsIdenticalCachedAndUncached(t *testing.T) {
	g := graph.MustNew(6, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 0}, {U: 0, V: 3},
	})
	c := New(0)
	for i := 0; i < 2; i++ { // second pass exercises the hit path
		d1, d2 := Degrees(c, g), Degrees(nil, g)
		for j := range d2 {
			if d1[j] != d2[j] {
				t.Fatal("degrees differ")
			}
		}
		a1, a2 := Adjacency(c, g), Adjacency(nil, g)
		for j := range a2.Val {
			if a1.Val[j] != a2.Val[j] || a1.ColIdx[j] != a2.ColIdx[j] {
				t.Fatal("adjacency differs")
			}
		}
		v1, m1, err1 := LaplacianEigs(context.Background(), c, g, 3, 7)
		v2, m2, err2 := LaplacianEigs(context.Background(), nil, g, 3, 7)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		for j := range v2 {
			if v1[j] != v2[j] {
				t.Fatal("eigenvalues differ")
			}
		}
		for j := range m2.Data {
			if m1.Data[j] != m2.Data[j] {
				t.Fatal("eigenvectors differ")
			}
		}
	}
}
