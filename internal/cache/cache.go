// Package cache provides the shared per-graph artifact cache of the
// experiment runner. Every cell of the benchmark grid runs all nine aligners
// on the same (G, G') pair, yet each algorithm independently recomputes
// identical per-graph artifacts — degree vectors, normalized Laplacians,
// spectral decompositions, embeddings. This cache memoizes those artifacts
// across algorithms (and across the reps and sweep points that reuse a
// graph), keyed by a structural fingerprint of the graph plus the artifact's
// parameters.
//
// Design constraints (see DESIGN.md §10):
//
//   - Determinism: a cached artifact is the bitwise-identical value the
//     consumer would have computed itself, so experiment output is
//     byte-identical with the cache on or off. Compute closures must
//     therefore be pure functions of their key.
//   - Immutability: cached values are shared across goroutines; consumers
//     must treat them as read-only (clone before mutating).
//   - Single-flight: when several workers need the same missing artifact,
//     one computes it and the others wait; errors are never cached, so a
//     failed or cancelled leader hands the computation to the next waiter.
//   - Bounded: total bytes are capped by an LRU eviction policy, so long
//     sweeps cannot grow memory without bound.
//
// A nil *Cache is valid and disabled: every helper computes directly.
package cache

import (
	"container/list"
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"graphalign/internal/obsv"
)

// Cache is a concurrency-safe, bounded, keyed artifact store with
// single-flight deduplication. Construct with New.
type Cache struct {
	mu      sync.Mutex
	budget  int64 // <= 0 means unbounded
	bytes   int64
	entries map[string]*entry
	lru     *list.List // front = most recently used; holds *entry

	// Instruments are resolved lazily from reg (nil-safe no-ops without a
	// registry).
	reg *obsv.Registry
}

// entry is one cached (or in-flight) artifact.
type entry struct {
	key   string
	ready chan struct{} // closed when value/failed are final
	value any
	bytes int64
	// failed marks a compute that returned an error; the entry is already
	// unlinked and waiters must retry.
	failed bool
	elem   *list.Element // nil while in flight or after eviction
}

// New returns an empty cache bounded to budgetBytes of stored artifact
// payload (estimated by the compute closures). A budget <= 0 means
// unbounded.
func New(budgetBytes int64) *Cache {
	return &Cache{
		budget:  budgetBytes,
		entries: make(map[string]*entry),
		lru:     list.New(),
	}
}

// SetRegistry attaches an observability registry; the cache then maintains
// cache_hits_total, cache_misses_total, cache_waits_total,
// cache_evictions_total counters and cache_bytes / cache_entries gauges.
// Nil-safe in both receiver and argument.
func (c *Cache) SetRegistry(reg *obsv.Registry) *Cache {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	c.reg = reg
	c.mu.Unlock()
	return c
}

// counter fetches a registry counter; both the cache's registry and the
// returned counter are nil-safe.
func (c *Cache) counter(name string) *obsv.Counter { return c.reg.Counter(name) }

// publishGauges refreshes the byte/entry gauges; callers hold c.mu.
func (c *Cache) publishGauges() {
	c.reg.Gauge("cache_bytes").Set(float64(c.bytes))
	c.reg.Gauge("cache_entries").Set(float64(c.lru.Len()))
}

// GetOrCompute returns the artifact stored under key, computing it with
// compute on a miss. compute must be a pure function of the key: it returns
// the value, an estimate of its payload size in bytes (used for the LRU
// budget), and an error. Concurrent callers of the same key are deduplicated:
// one runs compute, the rest wait for it (or for their own ctx to be done).
// Errors are returned to the caller but never cached.
//
// A nil cache calls compute directly.
func (c *Cache) GetOrCompute(ctx context.Context, key string, compute func() (any, int64, error)) (any, error) {
	if c == nil {
		v, _, err := compute()
		return v, err
	}
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			select {
			case <-e.ready:
				// Finished entry: a hit, unless the leader failed and we
				// raced its cleanup (then the map holds a fresh entry and we
				// would not be here — failed entries are unlinked first).
				if e.elem != nil {
					c.lru.MoveToFront(e.elem)
				}
				c.mu.Unlock()
				c.counter("cache_hits_total").Add(1)
				return e.value, nil
			default:
			}
			c.mu.Unlock()
			// In flight: wait for the leader, then re-examine. If the leader
			// failed, the retry loop makes this caller the next leader.
			c.counter("cache_waits_total").Add(1)
			select {
			case <-e.ready:
				if !e.failed {
					// Touch the LRU: a value just handed to a waiter is hot,
					// and skipping the touch let concurrent tenants evict an
					// entry in the same instant it was being served.
					c.mu.Lock()
					if e.elem != nil {
						c.lru.MoveToFront(e.elem)
					}
					c.mu.Unlock()
					c.counter("cache_hits_total").Add(1)
					return e.value, nil
				}
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		// Miss: become the leader.
		e := &entry{key: key, ready: make(chan struct{})}
		c.entries[key] = e
		c.mu.Unlock()
		c.counter("cache_misses_total").Add(1)

		v, bytes, err := c.lead(key, e, compute)
		c.mu.Lock()
		if err != nil {
			// Never cache errors: unlink so the next caller recomputes, then
			// wake waiters (who will retry).
			e.failed = true
			delete(c.entries, key)
			close(e.ready)
			c.mu.Unlock()
			return nil, err
		}
		e.value = v
		e.bytes = bytes
		e.elem = c.lru.PushFront(e)
		c.bytes += bytes
		close(e.ready)
		c.evictLocked()
		c.publishGauges()
		c.mu.Unlock()
		return v, nil
	}
}

// lead runs the leader's compute with panic containment for the entry's
// bookkeeping: if compute panics, the in-flight entry is unlinked and its
// waiters are woken (they retry and elect a new leader) before the panic
// propagates to the caller. Without this, a panicking compute — aligners do
// panic on pathological inputs, which is why the runner and the serve layer
// isolate panics per run — left a permanently in-flight entry, and every
// later request for that key blocked forever: one poisoned artifact
// deadlocked all tenants sharing the cache.
func (c *Cache) lead(key string, e *entry, compute func() (any, int64, error)) (v any, bytes int64, err error) {
	returned := false
	defer func() {
		if returned {
			return
		}
		c.mu.Lock()
		e.failed = true
		delete(c.entries, key)
		close(e.ready)
		c.mu.Unlock()
	}()
	v, bytes, err = compute()
	returned = true
	return v, bytes, err
}

// evictLocked drops least-recently-used finished entries until the byte
// budget is met. In-flight entries are not in the LRU list and are never
// evicted. The entry at the front (the one just inserted) may itself be
// evicted when it alone exceeds the budget — its value has already been
// handed to the caller, it just will not be reused.
func (c *Cache) evictLocked() {
	if c.budget <= 0 {
		return
	}
	for c.bytes > c.budget {
		back := c.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*entry)
		c.lru.Remove(back)
		e.elem = nil
		delete(c.entries, e.key)
		c.bytes -= e.bytes
		c.counter("cache_evictions_total").Add(1)
	}
}

// Len returns the number of finished entries currently cached.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Bytes returns the estimated payload bytes currently cached.
func (c *Cache) Bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// ParseBytes parses a human-friendly byte size: a plain integer is bytes;
// suffixes KB/MB/GB (decimal) and KiB/MiB/GiB (binary) are accepted, case-
// insensitively, with an optional trailing "B" ("64M" == "64MB"). Used by
// the alignbench -cache-budget flag.
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("cache: empty size")
	}
	upper := strings.ToUpper(t)
	mult := int64(1)
	for _, suf := range []struct {
		name string
		mult int64
	}{
		{"KIB", 1 << 10}, {"MIB", 1 << 20}, {"GIB", 1 << 30},
		{"KB", 1000}, {"MB", 1000 * 1000}, {"GB", 1000 * 1000 * 1000},
		{"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30},
		{"B", 1},
	} {
		if strings.HasSuffix(upper, suf.name) {
			upper = strings.TrimSuffix(upper, suf.name)
			mult = suf.mult
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(upper), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("cache: bad size %q: %w", s, err)
	}
	if n < 0 {
		return 0, fmt.Errorf("cache: negative size %q", s)
	}
	return n * mult, nil
}
