// Package algotest provides shared helpers for the per-algorithm test
// suites: standard alignment instances and recovery assertions.
package algotest

import (
	"math/rand"
	"testing"

	"graphalign/internal/algo"
	"graphalign/internal/assign"
	"graphalign/internal/gen"
	"graphalign/internal/metrics"
	"graphalign/internal/noise"
)

// Pair builds a deterministic alignment instance: a powerlaw-cluster graph
// with one-way noise at the given level, hidden by a random permutation.
func Pair(t *testing.T, n int, level float64, seed int64) noise.Pair {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	base := gen.PowerlawCluster(n, 3, 0.3, rng)
	p, err := noise.Apply(base, noise.OneWay, level, noise.Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// ERPair is Pair on an Erdős–Rényi base graph.
func ERPair(t *testing.T, n int, level float64, seed int64) noise.Pair {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	base := gen.ErdosRenyi(n, 4/float64(n-1)*2, rng)
	p, err := noise.Apply(base, noise.OneWay, level, noise.Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// Accuracy aligns the pair with the given method and returns accuracy.
func Accuracy(t *testing.T, a algo.Aligner, p noise.Pair, m assign.Method) float64 {
	t.Helper()
	mapping, err := algo.Align(a, p.Source, p.Target, m)
	if err != nil {
		t.Fatalf("%s: %v", a.Name(), err)
	}
	return metrics.Accuracy(mapping, p.TrueMap)
}

// CheckRecovers asserts the aligner reaches at least minAcc accuracy on a
// noiseless instance of size n.
func CheckRecovers(t *testing.T, a algo.Aligner, n int, minAcc float64) {
	t.Helper()
	p := Pair(t, n, 0, 12345)
	acc := Accuracy(t, a, p, assign.JonkerVolgenant)
	if acc < minAcc {
		t.Errorf("%s: accuracy %.3f < %.3f on an isomorphic instance", a.Name(), acc, minAcc)
	}
}

// CheckDeterministic asserts two runs produce identical similarity
// matrices.
func CheckDeterministic(t *testing.T, mk func() algo.Aligner, n int) {
	t.Helper()
	p := Pair(t, n, 0.02, 777)
	s1, err := mk().Similarity(p.Source, p.Target)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := mk().Similarity(p.Source, p.Target)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Rows != s2.Rows || s1.Cols != s2.Cols {
		t.Fatal("shapes differ between runs")
	}
	for i := range s1.Data {
		if s1.Data[i] != s2.Data[i] {
			t.Fatalf("similarity not deterministic at index %d: %v vs %v", i, s1.Data[i], s2.Data[i])
		}
	}
}

// CheckShape asserts the similarity matrix is |V_src| x |V_dst|.
func CheckShape(t *testing.T, a algo.Aligner) {
	t.Helper()
	p := Pair(t, 40, 0, 999)
	s, err := a.Similarity(p.Source, p.Target)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows != p.Source.N() || s.Cols != p.Target.N() {
		t.Fatalf("similarity shape %dx%d, want %dx%d", s.Rows, s.Cols, p.Source.N(), p.Target.N())
	}
}
