package algotest

import (
	"context"
	"math/rand"
	"testing"

	"graphalign/internal/algo"
	"graphalign/internal/assign"
	"graphalign/internal/cache"
	"graphalign/internal/graph"
	"graphalign/internal/metrics"
	"graphalign/internal/noise"
	"graphalign/internal/partition"
)

// Conformance describes one aligner's entry in the cross-algorithm
// conformance suite (see RunConformance). N sizes the test instances —
// smaller for the expensive optimal-transport and embedding methods — and
// the thresholds encode how sharply each method recovers structure, matching
// the per-algorithm recovery bars the individual packages assert.
type Conformance struct {
	// Name labels the subtests.
	Name string
	// New builds a fresh aligner with default hyperparameters.
	New func() algo.Aligner
	// N is the instance size used by every check.
	N int
	// SelfMinAcc is the minimum accuracy required when aligning a graph
	// with itself (ground truth: identity).
	SelfMinAcc float64
	// RelabelTol bounds how much accuracy may change when the target's
	// nodes are relabeled by a random permutation. Zero means the strict
	// default of 0.15 — relabeling changes float summation orders, so exact
	// equality is not required, but the structural outcome must hold.
	RelabelTol float64
	// SparseTopK, when positive, additionally runs the sparse-pipeline
	// contracts with this per-row candidate count: sparse self-alignment
	// must clear SelfMinAcc, and aligners exposing a factored similarity
	// (algo.FactorAligner / algo.EmbeddingAligner) must produce candidates
	// identical to dense top-k selection over the materialized matrix.
	SparseTopK int
	// Partitioned, when positive, additionally runs the partition-align-
	// stitch contracts at this shard count: partitioned self-alignment must
	// recover structure near-perfectly (the boundary re-bid repairs what
	// the induced subgraphs lose), and partitioned relabel invariance must
	// hold at a loosened tolerance. The off switch (RunSpec.Partitions 0
	// or 1 must be byte-identical to the monolithic path) is guarded by
	// the root-level TestPartitionOffIdentity — it needs the core runner,
	// which this package cannot import without a cycle.
	Partitioned int
}

// RunConformance runs the three framework-level contracts every aligner
// must satisfy — self-alignment, relabeling invariance, and cache
// byte-identity — as subtests of t.
func RunConformance(t *testing.T, cases []Conformance) {
	for _, c := range cases {
		c := c
		t.Run(c.Name+"/self_alignment", func(t *testing.T) {
			t.Parallel()
			CheckSelfAlignment(t, c.New(), c.N, c.SelfMinAcc)
		})
		t.Run(c.Name+"/relabel_invariance", func(t *testing.T) {
			t.Parallel()
			tol := c.RelabelTol
			if tol == 0 {
				tol = 0.15
			}
			CheckRelabelInvariance(t, c.New, c.N, tol)
		})
		t.Run(c.Name+"/cache_byte_identity", func(t *testing.T) {
			t.Parallel()
			CheckCacheByteIdentity(t, c.New, c.N)
		})
		if c.SparseTopK > 0 {
			t.Run(c.Name+"/sparse_self_alignment", func(t *testing.T) {
				t.Parallel()
				CheckSparseSelfAlignment(t, c.New(), c.N, c.SparseTopK, c.SelfMinAcc)
			})
			t.Run(c.Name+"/sparse_candidate_identity", func(t *testing.T) {
				t.Parallel()
				CheckSparseCandidateIdentity(t, c.New(), c.N, c.SparseTopK)
			})
		}
		if c.Partitioned > 0 {
			t.Run(c.Name+"/partitioned_self_alignment", func(t *testing.T) {
				t.Parallel()
				CheckPartitionedSelfAlignment(t, c.New, c.N, c.Partitioned)
			})
			t.Run(c.Name+"/partitioned_relabel_invariance", func(t *testing.T) {
				t.Parallel()
				tol := c.RelabelTol
				if tol == 0 {
					tol = 0.15
				}
				// Relabeling can flip chunk boundaries between structurally
				// tied nodes, which moves whole rows to different shards, so
				// the sharded path gets extra slack over the monolithic
				// tolerance (IsoRank measures a 0.26 swing at n=80, K=4).
				CheckPartitionedRelabelInvariance(t, c.New, c.N, c.Partitioned, tol+0.15)
			})
		}
	}
}

// partitionedSelfMinAcc is the quality bar for partitioned self-alignment
// at conformance sizes. The co-partition of identical graphs is identical
// chunk pairs, and the full-boundary auction re-bid repairs the ties that
// near-empty low-degree shards leave behind, so every built-in aligner
// measures >= 0.97 here. 0.9 leaves margin for float variation across
// platforms while still catching a broken co-partition, stitch, or
// refinement pass outright.
const partitionedSelfMinAcc = 0.9

// CheckPartitionedSelfAlignment asserts the sharded path recovers an
// identity-dominant mapping when aligning a graph with itself: the
// co-partition of identical graphs is identical chunk pairs, so every shard
// aligns two copies of the same subgraph.
func CheckPartitionedSelfAlignment(t *testing.T, mk func() algo.Aligner, n, k int) {
	t.Helper()
	base := Pair(t, n, 0, 4242).Source
	identity := make([]int, base.N())
	for i := range identity {
		identity[i] = i
	}
	mapping, _, err := partition.Align(context.Background(),
		func() (algo.Aligner, error) { return mk(), nil },
		base, base, assign.JonkerVolgenant, partition.Options{K: k})
	if err != nil {
		t.Fatalf("partitioned self-alignment failed: %v", err)
	}
	if acc := metrics.Accuracy(mapping, identity); acc < partitionedSelfMinAcc {
		t.Errorf("partitioned self-alignment accuracy %.3f < %.3f", acc, partitionedSelfMinAcc)
	}
}

// CheckPartitionedRelabelInvariance is CheckRelabelInvariance through the
// sharded path: node signatures are label-invariant, so relabeling the
// target must not move accuracy by more than tol (loosened relative to the
// monolithic tolerance — chunk boundaries can flip between structurally
// tied nodes).
func CheckPartitionedRelabelInvariance(t *testing.T, mk func() algo.Aligner, n, k int, tol float64) {
	t.Helper()
	p := Pair(t, n, 0.02, 31337)
	run := func(q noise.Pair) float64 {
		mapping, _, err := partition.Align(context.Background(),
			func() (algo.Aligner, error) { return mk(), nil },
			q.Source, q.Target, assign.JonkerVolgenant, partition.Options{K: k})
		if err != nil {
			t.Fatalf("partitioned alignment failed: %v", err)
		}
		return metrics.Accuracy(mapping, q.TrueMap)
	}
	accBase := run(p)

	rng := rand.New(rand.NewSource(271828))
	perm := graph.RandomPermutation(p.Target.N(), rng)
	relabeled, err := graph.Permute(p.Target, perm)
	if err != nil {
		t.Fatal(err)
	}
	composed := make([]int, len(p.TrueMap))
	for u, v := range p.TrueMap {
		composed[u] = perm[v]
	}
	accRelabel := run(noise.Pair{Source: p.Source, Target: relabeled, TrueMap: composed})

	if d := accBase - accRelabel; d > tol || -d > tol {
		t.Errorf("partitioned accuracy moved %.3f -> %.3f under relabeling (tol %.2f)", accBase, accRelabel, tol)
	}
}

// CheckSelfAlignment asserts that aligning a graph with itself recovers an
// identity-dominant mapping: accuracy against the identity ground truth of
// at least minAcc. Automorphisms make a perfect score impossible in general
// (symmetric nodes are interchangeable), which is why thresholds sit below 1.
func CheckSelfAlignment(t *testing.T, a algo.Aligner, n int, minAcc float64) {
	t.Helper()
	base := Pair(t, n, 0, 4242).Source
	identity := make([]int, base.N())
	for i := range identity {
		identity[i] = i
	}
	mapping, err := algo.Align(a, base, base, assign.JonkerVolgenant)
	if err != nil {
		t.Fatalf("%s: self-alignment failed: %v", a.Name(), err)
	}
	if acc := metrics.Accuracy(mapping, identity); acc < minAcc {
		t.Errorf("%s: self-alignment accuracy %.3f < %.3f", a.Name(), acc, minAcc)
	}
}

// CheckRelabelInvariance asserts the aligner's quality does not depend on
// how the target's nodes happen to be numbered: relabeling the target by a
// random permutation (with the ground truth composed accordingly) must keep
// accuracy within tol. Exact similarity equality is deliberately not
// required — relabeling reorders float summations — but the structural
// outcome may not hinge on node numbering.
func CheckRelabelInvariance(t *testing.T, mk func() algo.Aligner, n int, tol float64) {
	t.Helper()
	p := Pair(t, n, 0.02, 31337)
	accBase := Accuracy(t, mk(), p, assign.JonkerVolgenant)

	rng := rand.New(rand.NewSource(271828))
	perm := graph.RandomPermutation(p.Target.N(), rng)
	relabeled, err := graph.Permute(p.Target, perm)
	if err != nil {
		t.Fatal(err)
	}
	composed := make([]int, len(p.TrueMap))
	for u, v := range p.TrueMap {
		composed[u] = perm[v]
	}
	q := noise.Pair{Source: p.Source, Target: relabeled, TrueMap: composed}
	accRelabel := Accuracy(t, mk(), q, assign.JonkerVolgenant)

	if d := accBase - accRelabel; d > tol || -d > tol {
		t.Errorf("accuracy moved %.3f -> %.3f under relabeling (tol %.2f)", accBase, accRelabel, tol)
	}
}

// CheckSparseSelfAlignment is CheckSelfAlignment through the sparse
// assignment pipeline (per-row top-k candidates, ε-scaling auction): the
// reduced candidate set must still recover an identity-dominant mapping at
// the same bar as the dense solve — on self-alignment the true match is the
// strongest-scoring column, so top-k pruning must not lose it.
func CheckSparseSelfAlignment(t *testing.T, a algo.Aligner, n, topk int, minAcc float64) {
	t.Helper()
	base := Pair(t, n, 0, 4242).Source
	identity := make([]int, base.N())
	for i := range identity {
		identity[i] = i
	}
	mapping, _, _, _, err := algo.AlignSparseTimedCtx(context.Background(), a, base, base,
		assign.JonkerVolgenant, topk, 1)
	if err != nil {
		t.Fatalf("%s: sparse self-alignment failed: %v", a.Name(), err)
	}
	if acc := metrics.Accuracy(mapping, identity); acc < minAcc {
		t.Errorf("%s: sparse self-alignment accuracy %.3f < %.3f", a.Name(), acc, minAcc)
	}
}

// CheckSparseCandidateIdentity asserts the factored candidate contract for
// aligners exposing a factored similarity: candidates generated straight
// from the factors (never materializing the dense matrix) must equal dense
// top-k selection over the materialized matrix entry for entry — same
// columns, bitwise the same scores. Aligners with neither factored form are
// skipped.
func CheckSparseCandidateIdentity(t *testing.T, a algo.Aligner, n, topk int) {
	t.Helper()
	p := Pair(t, n, 0.02, 99991)
	ctx := context.Background()

	var sparse, dense *assign.Candidates
	switch fa := a.(type) {
	case algo.EmbeddingAligner:
		emb, err := fa.EmbeddingsCtx(ctx, p.Source, p.Target)
		if err != nil {
			t.Fatal(err)
		}
		sparse = assign.TopKEmbedding(emb, topk, 1)
		dense = assign.TopKDense(emb.Similarity(), topk, 1)
	case algo.FactorAligner:
		f, err := fa.FactorsCtx(ctx, p.Source, p.Target)
		if err != nil {
			t.Fatal(err)
		}
		sparse = assign.TopKFactor(f, topk, 1)
		dense = assign.TopKDense(f.Similarity(), topk, 1)
	default:
		t.Skipf("%s exposes no factored similarity", a.Name())
	}
	if sparse.Rows != dense.Rows || sparse.Cols != dense.Cols || sparse.K != dense.K {
		t.Fatalf("%s: candidate shape (%d,%d,%d) vs dense (%d,%d,%d)", a.Name(),
			sparse.Rows, sparse.Cols, sparse.K, dense.Rows, dense.Cols, dense.K)
	}
	for i := range dense.Col {
		if sparse.Col[i] != dense.Col[i] || sparse.Val[i] != dense.Val[i] {
			t.Fatalf("%s: factored candidates diverge from dense top-k at flat %d: (%d,%v) vs (%d,%v)",
				a.Name(), i, sparse.Col[i], sparse.Val[i], dense.Col[i], dense.Val[i])
		}
	}
	if sparse.Len != nil {
		t.Errorf("%s: factored candidates pruned rows (Len=%v) on a finite similarity", a.Name(), sparse.Len)
	}
}

// CheckCacheByteIdentity asserts the tentpole cache contract at the aligner
// level: the similarity matrix computed with no cache, with a cold cache,
// and with a warm cache (every artifact a hit) are byte-identical. Aligners
// that do not implement algo.Cacheable still pass — for them this reduces
// to a determinism check.
func CheckCacheByteIdentity(t *testing.T, mk func() algo.Aligner, n int) {
	t.Helper()
	p := Pair(t, n, 0.02, 99991)

	uncached, err := mk().Similarity(p.Source, p.Target)
	if err != nil {
		t.Fatal(err)
	}

	c := cache.New(0)
	for pass, label := range []string{"cold cache", "warm cache"} {
		a := mk()
		algo.ApplyCache(a, c)
		got, err := a.Similarity(p.Source, p.Target)
		if err != nil {
			t.Fatalf("%s (pass %d): %v", label, pass, err)
		}
		if got.Rows != uncached.Rows || got.Cols != uncached.Cols {
			t.Fatalf("%s: shape %dx%d vs uncached %dx%d", label, got.Rows, got.Cols, uncached.Rows, uncached.Cols)
		}
		for i := range uncached.Data {
			if got.Data[i] != uncached.Data[i] {
				t.Fatalf("%s: similarity differs from uncached at index %d: %v vs %v",
					label, i, got.Data[i], uncached.Data[i])
			}
		}
	}
}
