package graphlets

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphalign/internal/graph"
)

func count(t *testing.T, n int, edges []graph.Edge) Counts {
	t.Helper()
	return Count(graph.MustNew(n, edges))
}

func TestOrbit0IsDegree(t *testing.T) {
	g := graph.MustNew(4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}})
	c := Count(g)
	for u := 0; u < 4; u++ {
		if int(c[u][0]) != g.Degree(u) {
			t.Errorf("orbit0[%d] = %v, want degree %d", u, c[u][0], g.Degree(u))
		}
	}
}

func TestTriangleOrbits(t *testing.T) {
	c := count(t, 3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	for u := 0; u < 3; u++ {
		if c[u][3] != 1 {
			t.Errorf("triangle orbit3[%d] = %v, want 1", u, c[u][3])
		}
		if c[u][1] != 0 || c[u][2] != 0 {
			t.Errorf("triangle has no open 2-paths: node %d = %v", u, c[u])
		}
	}
}

func TestPath3Orbits(t *testing.T) {
	// 0-1-2: ends are orbit 1, middle is orbit 2.
	c := count(t, 3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if c[0][1] != 1 || c[2][1] != 1 {
		t.Errorf("path ends: %v %v", c[0], c[2])
	}
	if c[1][2] != 1 {
		t.Errorf("path middle: %v", c[1])
	}
}

func TestPath4Orbits(t *testing.T) {
	// 0-1-2-3.
	c := count(t, 4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	if c[0][4] != 1 || c[3][4] != 1 {
		t.Errorf("P4 ends: %v %v", c[0], c[3])
	}
	if c[1][5] != 1 || c[2][5] != 1 {
		t.Errorf("P4 middles: %v %v", c[1], c[2])
	}
}

func TestClawOrbits(t *testing.T) {
	c := count(t, 4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}})
	if c[0][7] != 1 {
		t.Errorf("claw center orbit7 = %v", c[0][7])
	}
	for u := 1; u < 4; u++ {
		if c[u][6] != 1 {
			t.Errorf("claw leaf orbit6[%d] = %v", u, c[u][6])
		}
	}
}

func TestC4Orbits(t *testing.T) {
	c := count(t, 4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}})
	for u := 0; u < 4; u++ {
		if c[u][8] != 1 {
			t.Errorf("C4 orbit8[%d] = %v", u, c[u][8])
		}
	}
}

func TestPawOrbits(t *testing.T) {
	// Triangle 0-1-2 plus pendant 3 attached to 0.
	c := count(t, 4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 0, V: 3}})
	if c[3][9] != 1 {
		t.Errorf("paw tail orbit9 = %v", c[3])
	}
	if c[0][10] != 1 {
		t.Errorf("paw attachment orbit10 = %v", c[0])
	}
	if c[1][11] != 1 || c[2][11] != 1 {
		t.Errorf("paw triangle nodes orbit11 = %v %v", c[1], c[2])
	}
}

func TestDiamondOrbits(t *testing.T) {
	// K4 minus edge (0,3).
	c := count(t, 4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3}})
	if c[0][12] != 1 || c[3][12] != 1 {
		t.Errorf("diamond degree-2 nodes: %v %v", c[0], c[3])
	}
	if c[1][13] != 1 || c[2][13] != 1 {
		t.Errorf("diamond degree-3 nodes: %v %v", c[1], c[2])
	}
}

func TestK4Orbits(t *testing.T) {
	c := count(t, 4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3}})
	for u := 0; u < 4; u++ {
		if c[u][14] != 1 {
			t.Errorf("K4 orbit14[%d] = %v", u, c[u][14])
		}
		// K4 contains no induced paw/diamond/cycle/path/star.
		for _, o := range []int{4, 5, 6, 7, 8, 9, 10, 11, 12, 13} {
			if c[u][o] != 0 {
				t.Errorf("K4 node %d has spurious orbit %d = %v", u, o, c[u][o])
			}
		}
	}
}

// bruteForceCount enumerates all 4-subsets directly for cross-checking ESU.
func bruteForceCount(g *graph.Graph) Counts {
	n := g.N()
	c := make(Counts, n)
	for u := range c {
		c[u] = make([]float64, NumOrbits)
	}
	// Orbits 0-3 trivially recomputed via the public Count paths; here we
	// only cross-check 4-node orbits (4..14).
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			for x := b + 1; x < n; x++ {
				for y := x + 1; y < n; y++ {
					sub := []int{a, b, x, y}
					if !connected4(g, sub) {
						continue
					}
					classify4(g, sub, c)
				}
			}
		}
	}
	return c
}

func connected4(g *graph.Graph, sub []int) bool {
	visited := map[int]bool{sub[0]: true}
	queue := []int{sub[0]}
	inSub := map[int]bool{}
	for _, s := range sub {
		inSub[s] = true
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if inSub[v] && !visited[v] {
				visited[v] = true
				queue = append(queue, v)
			}
		}
	}
	return len(visited) == 4
}

func TestPropertyESUMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var edges []graph.Edge
		n := 10
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.3 {
					edges = append(edges, graph.Edge{U: u, V: v})
				}
			}
		}
		g := graph.MustNew(n, edges)
		esu := Count(g)
		brute := bruteForceCount(g)
		for u := 0; u < n; u++ {
			for o := 4; o < NumOrbits; o++ {
				if esu[u][o] != brute[u][o] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestOrbitSumIdentity(t *testing.T) {
	// Each 4-node graphlet instance credits exactly 4 node-orbit slots.
	rng := rand.New(rand.NewSource(42))
	var edges []graph.Edge
	n := 12
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < 0.35 {
				edges = append(edges, graph.Edge{U: u, V: v})
			}
		}
	}
	g := graph.MustNew(n, edges)
	c := Count(g)
	var total4 float64
	for u := 0; u < n; u++ {
		for o := 4; o < NumOrbits; o++ {
			total4 += c[u][o]
		}
	}
	if total4 != 0 && int(total4)%4 != 0 {
		t.Errorf("sum of 4-node orbit counts %v not divisible by 4", total4)
	}
}

func TestOrbitWeightsPositive(t *testing.T) {
	w := OrbitWeights()
	for o, v := range w {
		if v <= 0 || v > 1 {
			t.Errorf("weight[%d] = %v out of (0, 1]", o, v)
		}
	}
	if w[0] != 1 {
		t.Errorf("degree orbit should have weight 1, got %v", w[0])
	}
}
