// Package graphlets counts, for every node, the graphlet orbits of all
// connected graphlets with 2–4 nodes. These per-node orbit counts form the
// "graphlet degree vector" signatures GRAAL matches on.
//
// Orbit numbering follows the standard Pržulj enumeration:
//
//	orbit  0: degree (G0, the single edge)
//	orbit  1: end of a 2-path            (G1)
//	orbit  2: middle of a 2-path         (G1)
//	orbit  3: triangle node              (G2)
//	orbit  4: end of a 3-path            (G3)
//	orbit  5: middle of a 3-path         (G3)
//	orbit  6: leaf of a claw / 3-star    (G4)
//	orbit  7: center of a claw           (G4)
//	orbit  8: cycle node of C4           (G5)
//	orbit  9: leaf of a tailed triangle  (G6, the "paw")
//	orbit 10: tail-attachment node       (G6)
//	orbit 11: the triangle node opposite (G6)
//	orbit 12: degree-2 node of a diamond (G7)
//	orbit 13: degree-3 node of a diamond (G7)
//	orbit 14: node of K4                 (G8)
//
// Counting uses the combinatorial relations of Lin et al. / ORCA restricted
// to 4-node graphlets: count triangles and paths locally, then solve for
// the induced-subgraph orbit counts. All counts are exact.
package graphlets

import (
	"graphalign/internal/graph"
)

// NumOrbits is the number of orbits for graphlets of 2-4 nodes.
const NumOrbits = 15

// Counts holds per-node orbit counts: Counts[u][o] is how many times node u
// touches orbit o.
type Counts [][]float64

// Count computes the exact orbit counts for every node of g by direct
// enumeration of connected 2-, 3- and 4-node induced subgraphs anchored at
// each node. Complexity is O(sum_v deg(v)^3) in the worst case, adequate
// for the graph sizes the alignment experiments use.
func Count(g *graph.Graph) Counts {
	n := g.N()
	c := make(Counts, n)
	for u := range c {
		c[u] = make([]float64, NumOrbits)
	}

	// Orbit 0: degree.
	for u := 0; u < n; u++ {
		c[u][0] = float64(g.Degree(u))
	}

	// --- 3-node graphlets ---
	// Triangles (orbit 3) and 2-paths (orbits 1, 2).
	for u := 0; u < n; u++ {
		nu := g.Neighbors(u)
		du := len(nu)
		// u is the middle of a 2-path for every non-adjacent neighbor pair,
		// i.e. (du choose 2) minus triangles at u.
		triAtU := 0
		for ai := 0; ai < du; ai++ {
			for bi := ai + 1; bi < du; bi++ {
				if g.HasEdge(nu[ai], nu[bi]) {
					triAtU++
				}
			}
		}
		c[u][3] = float64(triAtU)
		pairs := du * (du - 1) / 2
		c[u][2] = float64(pairs - triAtU)
	}
	// Orbit 1: u is an end of a 2-path u-v-w with u !~ w.
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(u) {
			// neighbors of v other than u and not adjacent to u
			for _, w := range g.Neighbors(v) {
				if w == u {
					continue
				}
				if !g.HasEdge(u, w) {
					c[u][1]++
				}
			}
		}
	}

	// --- 4-node graphlets: enumerate anchored at the smallest node id ---
	// For exactness we enumerate all connected induced 4-node subgraphs once
	// via the standard "enumerate connected subsets" expansion, classify the
	// induced subgraph, and credit each member node with its orbit.
	enumerate4(g, c)
	return c
}

// enumerate4 enumerates each connected induced 4-node subgraph exactly once
// using the ESU algorithm (Wernicke 2006) and increments the orbit counters
// of its nodes. ESU invariant: only nodes with id greater than the root may
// join, and each candidate enters the extension set exactly once — when its
// first neighbor inside the subgraph is added.
func enumerate4(g *graph.Graph, c Counts) {
	n := g.N()
	sub := make([]int, 0, 4)
	inSub := make([]bool, n)
	var extend func(ext []int, root int)
	extend = func(ext []int, root int) {
		if len(sub) == 4 {
			classify4(g, sub, c)
			return
		}
		for i := 0; i < len(ext); i++ {
			v := ext[i]
			// Extension for the recursive call: the not-yet-tried remainder
			// of ext plus the exclusive neighbors of v (neighbors > root not
			// adjacent to any current subgraph node).
			newExt := append([]int(nil), ext[i+1:]...)
			for _, w := range g.Neighbors(v) {
				if w <= root || inSub[w] {
					continue
				}
				exclusive := true
				for _, s := range sub {
					if g.HasEdge(s, w) {
						exclusive = false
						break
					}
				}
				if !exclusive {
					continue
				}
				dup := false
				for _, x := range newExt {
					if x == w {
						dup = true
						break
					}
				}
				if !dup {
					newExt = append(newExt, w)
				}
			}
			sub = append(sub, v)
			inSub[v] = true
			extend(newExt, root)
			inSub[v] = false
			sub = sub[:len(sub)-1]
		}
	}
	for root := 0; root < n; root++ {
		var ext []int
		for _, v := range g.Neighbors(root) {
			if v > root {
				ext = append(ext, v)
			}
		}
		sub = append(sub[:0], root)
		inSub[root] = true
		extend(ext, root)
		inSub[root] = false
		sub = sub[:0]
	}
}

// classify4 identifies the induced graphlet on the 4 nodes of sub and
// credits orbits.
func classify4(g *graph.Graph, sub []int, c Counts) {
	var deg [4]int
	edges := 0
	var adj [4][4]bool
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if g.HasEdge(sub[i], sub[j]) {
				adj[i][j] = true
				adj[j][i] = true
				deg[i]++
				deg[j]++
				edges++
			}
		}
	}
	switch edges {
	case 3:
		// path P4 (degrees 1,1,2,2) or star K1,3 (degrees 1,1,1,3)
		maxd := 0
		for _, d := range deg {
			if d > maxd {
				maxd = d
			}
		}
		if maxd == 3 {
			for i, d := range deg {
				if d == 3 {
					c[sub[i]][7]++ // star center
				} else {
					c[sub[i]][6]++ // star leaf
				}
			}
		} else {
			for i, d := range deg {
				if d == 1 {
					c[sub[i]][4]++ // path end
				} else {
					c[sub[i]][5]++ // path middle
				}
			}
		}
	case 4:
		// cycle C4 (all degree 2) or tailed triangle / paw (degrees 1,2,2,3)
		isCycle := true
		for _, d := range deg {
			if d != 2 {
				isCycle = false
				break
			}
		}
		if isCycle {
			for i := 0; i < 4; i++ {
				c[sub[i]][8]++
			}
		} else {
			for i, d := range deg {
				switch d {
				case 1:
					c[sub[i]][9]++ // pendant leaf
				case 3:
					c[sub[i]][10]++ // attachment node (in triangle, holds tail)
				default:
					c[sub[i]][11]++ // other two triangle nodes
				}
			}
		}
	case 5:
		// diamond K4 minus an edge: degrees 2,2,3,3
		for i, d := range deg {
			if d == 2 {
				c[sub[i]][12]++
			} else {
				c[sub[i]][13]++
			}
		}
	case 6:
		for i := 0; i < 4; i++ {
			c[sub[i]][14]++
		}
	}
}

// OrbitWeights returns the GRAAL orbit weights w_o = 1 - log(o_count)/log(15)
// style weighting: orbits touching more nodes of their graphlet are less
// discriminative. Following GRAAL, each orbit o is weighted by
// 1 - log(a_o)/log(max_a) where a_o is the number of orbits that "affect"
// orbit o; we use the standard published values for orbits 0..14.
func OrbitWeights() [NumOrbits]float64 {
	// Dependency counts for orbits 0..14 (from the GRAAL paper's
	// formulation restricted to 4-node graphlets).
	a := [NumOrbits]float64{1, 2, 2, 2, 2, 3, 2, 3, 3, 3, 4, 4, 4, 4, 4}
	var w [NumOrbits]float64
	const logMax = 1.3862943611198906 // log(4)
	for o, ao := range a {
		w[o] = 1 - logOf(ao)/logMax
		if w[o] < 0.1 {
			w[o] = 0.1
		}
	}
	return w
}

func logOf(x float64) float64 {
	// tiny local ln to avoid importing math for one call site
	switch x {
	case 1:
		return 0
	case 2:
		return 0.6931471805599453
	case 3:
		return 1.0986122886681098
	default:
		return 1.3862943611198906
	}
}
