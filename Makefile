# Convenience targets for the graphalign reproduction.

GO ?= go

.PHONY: all build test race bench vet cover experiments loadtest clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Exercise the parallel runner and matrix kernels under the race detector.
race:
	$(GO) test -race ./...

# One benchmark per paper table/figure; tables land in bench_results/.
bench:
	$(GO) test -run XXX -bench . -benchmem .

cover:
	$(GO) test -cover ./...

# Regenerate every experiment at the default laptop scale.
experiments:
	$(GO) run ./cmd/alignbench -all -v -out results.txt

# Stand up alignd and drive it with alignload; report in BENCH_serve.json.
loadtest:
	scripts/loadtest.sh

clean:
	rm -rf bench_results results.txt test_output.txt bench_output.txt
